#ifndef MAGMA_RL_POLICY_H_
#define MAGMA_RL_POLICY_H_

#include <vector>

#include "common/rng.h"
#include "sched/evaluator.h"
#include "sched/mapping.h"

namespace magma::rl {

/** Softmax of a logit vector (numerically stabilized). */
std::vector<double> softmax(const std::vector<double>& logits);

/** Sample an index from softmax(logits). */
int sampleCategorical(const std::vector<double>& logits, common::Rng& rng);

/** log softmax(logits)[action]. */
double logProb(const std::vector<double>& logits, int action);

/** Entropy of softmax(logits). */
double entropy(const std::vector<double>& logits);

/**
 * Gradient of (-coeff * log pi(action)) w.r.t. the logits:
 *   coeff * (softmax - onehot(action)).
 * This is the policy-gradient building block for both A2C and PPO.
 */
std::vector<double> policyGradLogits(const std::vector<double>& logits,
                                     int action, double coeff);

/** Gradient of (-coeff * entropy) w.r.t. the logits (entropy bonus). */
std::vector<double> entropyGradLogits(const std::vector<double>& logits,
                                      double coeff);

/**
 * The sequential mapping-construction environment both RL agents share.
 *
 * An episode walks the G jobs of the group in order; at step j the agent
 * picks a sub-accelerator and a priority bucket for job j. The state
 * summarizes job j's per-core profile from the Job Analysis Table, the
 * per-core load accumulated so far, the job's task category and progress.
 * The episode's final reward is the mapping's throughput normalized by
 * the platform's peak (intermediate rewards are zero).
 */
class MappingEnv {
  public:
    static constexpr int kPriorityBuckets = 10;

    explicit MappingEnv(const sched::MappingEvaluator& eval);

    int featureDim() const;
    int accelActions() const { return num_accels_; }
    int priorityActions() const { return kPriorityBuckets; }
    int steps() const { return group_size_; }

    /** Reset per-episode accumulators. */
    void reset();

    /** Features of the current step's state. */
    std::vector<double> observe(int step) const;

    /** Commit the step's actions; fills the mapping under construction. */
    void act(int step, int accel, int bucket, sched::Mapping& m);

  private:
    const sched::MappingEvaluator* eval_;
    int num_accels_;
    int group_size_;
    std::vector<double> loads_;        // accumulated no-stall secs per core
    std::vector<double> feat_scale_;   // per-core latency normalizer
};

}  // namespace magma::rl

#endif  // MAGMA_RL_POLICY_H_
