#ifndef MAGMA_RL_NN_H_
#define MAGMA_RL_NN_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace magma::rl {

/**
 * Minimal dense neural-network substrate with manual backpropagation,
 * sized for the paper's RL agents ("policy and critic networks composed
 * by 3 MLP layers with 128 nodes", Table IV).
 *
 * Batched: the forward pass takes a (batch x in) matrix — one row per
 * environment step — which keeps full-episode A2C/PPO updates cheap.
 */
class Linear {
  public:
    Linear(int in, int out, common::Rng& rng);

    /** y = x W^T + b. Caches x for backward. */
    common::Matrix forward(const common::Matrix& x);

    /**
     * Given dL/dy for the cached forward, accumulate dL/dW, dL/db and
     * return dL/dx.
     */
    common::Matrix backward(const common::Matrix& grad_out);

    void zeroGrad();

    int inDim() const { return in_; }
    int outDim() const { return out_; }

    /** Flattened parameter / gradient views (weights then biases). */
    std::vector<double*> paramPtrs();
    std::vector<double*> gradPtrs();

  private:
    int in_, out_;
    common::Matrix w_;       // out x in
    std::vector<double> b_;  // out
    common::Matrix gw_;
    std::vector<double> gb_;
    common::Matrix cached_x_;
};

/**
 * MLP with ReLU between layers and a linear head. The layout
 * {in, 128, 128, 128, out} realizes Table IV's 3x128 networks.
 */
class Mlp {
  public:
    Mlp(const std::vector<int>& dims, uint64_t seed);

    /** Batched forward; caches intermediate activations. */
    common::Matrix forward(const common::Matrix& x);

    /** Batched backward for the cached forward; accumulates grads. */
    void backward(const common::Matrix& grad_out);

    void zeroGrad();
    std::vector<double*> paramPtrs();
    std::vector<double*> gradPtrs();

    int inDim() const { return layers_.front().inDim(); }
    int outDim() const { return layers_.back().outDim(); }

  private:
    std::vector<Linear> layers_;
    std::vector<common::Matrix> relu_in_;  // pre-activation caches
};

}  // namespace magma::rl

#endif  // MAGMA_RL_NN_H_
