#ifndef MAGMA_RL_OPTIM_H_
#define MAGMA_RL_OPTIM_H_

#include <vector>

namespace magma::rl {

/**
 * Gradient-descent optimizers over flattened parameter/gradient pointer
 * views (Table IV: A2C uses RMSProp lr 0.0007, PPO2 uses Adam lr 0.00025).
 * `step` applies one update and does NOT zero the gradients.
 */
class GradOptimizer {
  public:
    GradOptimizer(std::vector<double*> params, std::vector<double*> grads)
        : params_(std::move(params)), grads_(std::move(grads))
    {}
    virtual ~GradOptimizer() = default;

    /** Apply one update from the accumulated gradients. */
    virtual void step() = 0;

    /** Clip gradients to a global L2 norm (common PPO/A2C hygiene). */
    void clipGradNorm(double max_norm);

  protected:
    std::vector<double*> params_;
    std::vector<double*> grads_;
};

/** RMSProp with the usual smoothing constant 0.99 and epsilon 1e-8. */
class RmsProp : public GradOptimizer {
  public:
    RmsProp(std::vector<double*> params, std::vector<double*> grads,
            double lr = 7e-4, double alpha = 0.99, double eps = 1e-8);
    void step() override;

  private:
    double lr_, alpha_, eps_;
    std::vector<double> sq_;
};

/** Adam with beta1 0.9, beta2 0.999, epsilon 1e-8. */
class Adam : public GradOptimizer {
  public:
    Adam(std::vector<double*> params, std::vector<double*> grads,
         double lr = 2.5e-4, double beta1 = 0.9, double beta2 = 0.999,
         double eps = 1e-8);
    void step() override;

  private:
    double lr_, beta1_, beta2_, eps_;
    long t_ = 0;
    std::vector<double> m_, v_;
};

}  // namespace magma::rl

#endif  // MAGMA_RL_OPTIM_H_
