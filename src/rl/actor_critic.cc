#include "rl/actor_critic.h"

#include <cmath>

namespace magma::rl {

using common::Matrix;

ActorCritic::ActorCritic(const sched::MappingEvaluator& eval, uint64_t seed,
                         int hidden)
    : eval_(&eval),
      env_(eval),
      actor_({env_.featureDim(), hidden, hidden, hidden,
              env_.accelActions() + env_.priorityActions()},
             seed),
      critic_({env_.featureDim(), hidden, hidden, hidden, 1}, seed ^ 0x9e37),
      reward_scale_(eval.platform().peakGflops())
{}

Episode
ActorCritic::rollout(common::Rng& rng, opt::SearchRecorder& rec)
{
    const int g = env_.steps();
    const int a_n = env_.accelActions();
    const int b_n = env_.priorityActions();

    Episode ep;
    ep.steps.reserve(g);
    ep.mapping.accelSel.assign(g, 0);
    ep.mapping.priority.assign(g, 0.0);
    env_.reset();

    for (int j = 0; j < g; ++j) {
        RolloutStep step;
        step.features = env_.observe(j);
        Matrix x(1, step.features.size());
        for (size_t i = 0; i < step.features.size(); ++i)
            x.at(0, i) = step.features[i];
        Matrix logits = actor_.forward(x);
        std::vector<double> accel_logits(a_n), bucket_logits(b_n);
        for (int i = 0; i < a_n; ++i)
            accel_logits[i] = logits.at(0, i);
        for (int i = 0; i < b_n; ++i)
            bucket_logits[i] = logits.at(0, a_n + i);
        step.accel = sampleCategorical(accel_logits, rng);
        step.bucket = sampleCategorical(bucket_logits, rng);
        step.logp = logProb(accel_logits, step.accel) +
                    logProb(bucket_logits, step.bucket);
        env_.act(j, step.accel, step.bucket, ep.mapping);
        ep.steps.push_back(std::move(step));
    }

    ep.fitness = rec.evaluate(ep.mapping);
    ep.reward = reward_scale_ > 0.0 ? ep.fitness / reward_scale_
                                    : ep.fitness;
    return ep;
}

Matrix
ActorCritic::stackFeatures(const std::vector<RolloutStep>& steps)
{
    Matrix x(steps.size(), steps.empty() ? 0 : steps[0].features.size());
    for (size_t r = 0; r < steps.size(); ++r)
        for (size_t c = 0; c < steps[r].features.size(); ++c)
            x.at(r, c) = steps[r].features[c];
    return x;
}

std::vector<double>
ActorCritic::discountedReturns(int steps, double reward, double gamma)
{
    std::vector<double> returns(steps);
    double r = reward;
    for (int j = steps - 1; j >= 0; --j) {
        returns[j] = r;
        r *= gamma;
    }
    return returns;
}

}  // namespace magma::rl
