#ifndef MAGMA_EXEC_COST_CACHE_H_
#define MAGMA_EXEC_COST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "cost/cost_model.h"
#include "dnn/layer.h"

namespace magma::exec {

/** Aggregate hit/miss/size counters, surfaced by CostCache::stats(). */
struct CostCacheStats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t entries = 0;

    double hitRate() const
    {
        int64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }
};

/**
 * Sharded, read-mostly memo of CostModel layer queries.
 *
 * The cost model is deterministic: `analyze(layer, batch, cfg)` is a pure
 * function of its arguments, so its result can be memoized process-wide.
 * Population searches, bandwidth sweeps and sub-accelerator-combination
 * sweeps (Figs. 12-13) re-analyze the same (layer, sub-accel) pairs over
 * and over — each table build for a 100-job group on S4 is 500 queries of
 * which typically < 10% are distinct shapes.
 *
 * Keys cover every input `CostModel::analyze` reads: the layer shape, the
 * mini-batch, the dataflow and all sub-accelerator config fields, the
 * model's energy parameters, plus a caller-supplied bandwidth bucket for
 * contexts that discriminate cost by memory-bandwidth regime (the
 * analytical model itself is BW-independent — bandwidth is applied later
 * by the BW Allocator — so callers pass 0 today).
 *
 * Thread-safe: lookups take a shard's shared lock, inserts its exclusive
 * lock; concurrent misses on the same key may both compute (results are
 * identical) and the first insert wins. Hit/miss counters are atomics.
 *
 * Memory order (audited; see docs/concurrency.md): the hit/miss
 * counters are relaxed because they are pure statistics — all cached
 * DATA moves under the shard shared_mutex, which provides every
 * ordering a reader needs. A stats() read concurrent with analyze()
 * calls may see hits+misses briefly disagree with per-shard sizes;
 * exactness holds at quiescent points (tests join threads first).
 */
class CostCache {
  public:
    explicit CostCache(int shards = 16);

    /**
     * Memoized CostModel::analyze. A hit returns a copy of the stored
     * result — bit-identical to what the cold miss computed.
     */
    cost::CostResult analyze(const cost::CostModel& model,
                             const dnn::LayerShape& layer, int batch,
                             const cost::SubAccelConfig& cfg,
                             int bw_bucket = 0);

    CostCacheStats stats() const;

    /** Drop every entry and zero the counters. */
    void clear();

    /**
     * Process-wide cache shared by default-constructed problems; lives
     * for the process, so back-to-back experiment sweeps reuse entries.
     */
    static CostCache& global();

  private:
    struct Shard {
        mutable std::shared_mutex mu;
        // Determinism audit: keyed find/emplace only (plus size() for
        // stats), never iterated — hash order cannot reach results.
        std::unordered_map<std::string, cost::CostResult> map;
    };

    static std::string makeKey(const cost::CostModel& model,
                               const dnn::LayerShape& layer, int batch,
                               const cost::SubAccelConfig& cfg,
                               int bw_bucket);

    Shard& shardFor(const std::string& key);

    std::unique_ptr<Shard[]> shards_;
    int num_shards_;
    std::atomic<int64_t> hits_{0};
    std::atomic<int64_t> misses_{0};
};

}  // namespace magma::exec

#endif  // MAGMA_EXEC_COST_CACHE_H_
