#ifndef MAGMA_EXEC_EVAL_ENGINE_H_
#define MAGMA_EXEC_EVAL_ENGINE_H_

#include <memory>
#include <vector>

#include "exec/thread_pool.h"
#include "sched/evaluator.h"
#include "sched/mapping.h"

namespace magma::exec {

/**
 * Batch fitness-evaluation engine: fans a generation of candidate
 * mappings out over a ThreadPool and returns their fitness values in
 * submission order.
 *
 * Why this is safe without per-candidate locking: after construction a
 * MappingEvaluator is immutable — `fitness` reads the Job Analysis Table
 * and runs the BW-Allocator simulation on purely local state — except for
 * the sample meter, which is a relaxed atomic. Each worker therefore
 * shares one evaluator and keeps all scratch (decoded queues, allocator
 * state) on its own stack; there is no per-thread evaluator clone to keep
 * in sync.
 *
 * Determinism: result[i] is always the fitness of batch[i], computed by
 * the exact same code as the serial path, so a batch evaluation is
 * bitwise identical to evaluating the same mappings one-by-one (IEEE
 * arithmetic on a fixed input is scheduling-independent).
 */
class EvalEngine {
  public:
    /**
     * `threads <= 0` selects ThreadPool::defaultThreads() (MAGMA_THREADS
     * env var, else hardware concurrency).
     */
    explicit EvalEngine(const sched::MappingEvaluator& eval, int threads = 0)
        : eval_(&eval), owned_pool_(std::make_unique<ThreadPool>(threads)),
          pool_(owned_pool_.get())
    {}

    /**
     * Borrow an external pool instead of owning one — lets a long-lived
     * service (src/serve/) reuse a single worker-lane pool across many
     * back-to-back searches over different evaluators, avoiding thread
     * churn per request. The pool must outlive the engine and must not
     * have another batch in flight during evaluateBatch.
     */
    EvalEngine(const sched::MappingEvaluator& eval, ThreadPool& pool)
        : eval_(&eval), pool_(&pool)
    {}

    int numThreads() const { return pool_->numThreads(); }
    const sched::MappingEvaluator& evaluator() const { return *eval_; }
    ThreadPool& pool() { return *pool_; }

    /**
     * Fitness of `batch[first..first+count)`; result[i] corresponds to
     * batch[first + i]. Each evaluated mapping counts one sample on the
     * evaluator's meter, exactly like serial `fitness` calls.
     */
    std::vector<double> evaluateBatch(const sched::Mapping* batch,
                                      size_t count) const;

    std::vector<double> evaluateBatch(
        const std::vector<sched::Mapping>& batch) const
    {
        return evaluateBatch(batch.data(), batch.size());
    }

  private:
    const sched::MappingEvaluator* eval_;
    std::unique_ptr<ThreadPool> owned_pool_;  // null when borrowing
    ThreadPool* pool_;
};

}  // namespace magma::exec

#endif  // MAGMA_EXEC_EVAL_ENGINE_H_
