#ifndef MAGMA_EXEC_EVAL_ENGINE_H_
#define MAGMA_EXEC_EVAL_ENGINE_H_

#include <memory>
#include <vector>

#include "exec/thread_pool.h"
#include "sched/evaluator.h"
#include "sched/flat_eval.h"
#include "sched/mapping.h"

namespace magma::exec {

/**
 * Batch fitness-evaluation engine: fans a generation of candidate
 * mappings out over a ThreadPool and returns their fitness values in
 * submission order.
 *
 * Evaluation kernel (sched::EvalMode): by default candidates are scored
 * through the allocation-free sched::FlatEvaluator fast path — the
 * engine compiles the evaluator's tables once at construction and keeps
 * one reusable sched::EvalScratch per worker lane, so a whole
 * generation is evaluated without a single heap allocation in the inner
 * loop. EvalMode::Reference falls back to MappingEvaluator::fitness.
 * Both kernels are bitwise identical on every candidate (the flat
 * evaluator's parity contract), so the mode only changes wall-clock.
 *
 * Why this is safe without per-candidate locking: after construction a
 * MappingEvaluator is immutable — `fitness` reads the Job Analysis Table
 * and runs the BW-Allocator simulation on purely local state — except for
 * the sample meter, which is a relaxed atomic shared by both kernels.
 * Each lane owns its scratch exclusively (ThreadPool::parallelForLane),
 * so there is no per-thread evaluator clone to keep in sync.
 *
 * Determinism: result[i] is always the fitness of batch[i], computed by
 * code bitwise-equal to the serial reference path, so a batch evaluation
 * is identical to evaluating the same mappings one-by-one (IEEE
 * arithmetic on a fixed input is scheduling-independent).
 */
class EvalEngine {
  public:
    /**
     * `threads <= 0` selects ThreadPool::defaultThreads() (MAGMA_THREADS
     * env var, else hardware concurrency).
     */
    explicit EvalEngine(const sched::MappingEvaluator& eval,
                        int threads = 0,
                        sched::EvalMode mode = sched::EvalMode::Flat)
        : eval_(&eval), owned_pool_(std::make_unique<ThreadPool>(threads)),
          pool_(owned_pool_.get())
    {
        initKernel(mode);
    }

    /**
     * Borrow an external pool instead of owning one — lets a long-lived
     * service (src/serve/) reuse a single worker-lane pool across many
     * back-to-back searches over different evaluators, avoiding thread
     * churn per request. The pool must outlive the engine and must not
     * have another batch in flight during evaluateBatch.
     */
    EvalEngine(const sched::MappingEvaluator& eval, ThreadPool& pool,
               sched::EvalMode mode = sched::EvalMode::Flat)
        : eval_(&eval), pool_(&pool)
    {
        initKernel(mode);
    }

    int numThreads() const { return pool_->numThreads(); }
    const sched::MappingEvaluator& evaluator() const { return *eval_; }
    ThreadPool& pool() { return *pool_; }
    sched::EvalMode mode() const
    {
        return flat_ ? sched::EvalMode::Flat : sched::EvalMode::Reference;
    }

    /**
     * Fitness of `batch[first..first+count)`; result[i] corresponds to
     * batch[first + i]. Each evaluated mapping counts one sample on the
     * evaluator's meter, exactly like serial `fitness` calls.
     */
    std::vector<double> evaluateBatch(const sched::Mapping* batch,
                                      size_t count) const;

    std::vector<double> evaluateBatch(
        const std::vector<sched::Mapping>& batch) const
    {
        return evaluateBatch(batch.data(), batch.size());
    }

    /**
     * Makespan + total energy of `batch[first..first+count)` from ONE
     * schedule simulation per candidate, in submission order — the
     * substrate of mo::VectorFitness: every Section IV-C objective is a
     * closed-form function of the (makespan, joules) pair
     * (sched::objectiveFromSimulation), so a whole objective vector
     * costs a single simulation instead of one per objective. Counts one
     * sample per candidate, exactly like evaluateBatch; the makespans
     * are bitwise identical across kernels and thread counts.
     */
    std::vector<sched::SimPoint> simulateBatch(const sched::Mapping* batch,
                                               size_t count) const;

    std::vector<sched::SimPoint> simulateBatch(
        const std::vector<sched::Mapping>& batch) const
    {
        return simulateBatch(batch.data(), batch.size());
    }

    /**
     * Score a single candidate through the engine's kernel on the
     * calling thread (lane 0) — the serial path of SearchRecorder when a
     * flat engine exists. Counts one sample. Must not be called while a
     * batch is in flight on the same engine.
     */
    double fitnessOne(const sched::Mapping& m) const;

  private:
    void initKernel(sched::EvalMode mode)
    {
        if (mode == sched::EvalMode::Flat) {
            flat_ = std::make_unique<sched::FlatEvaluator>(*eval_);
            scratch_.resize(static_cast<size_t>(pool_->numThreads()));
        }
    }

    const sched::MappingEvaluator* eval_;
    std::unique_ptr<ThreadPool> owned_pool_;  // null when borrowing
    ThreadPool* pool_;
    std::unique_ptr<sched::FlatEvaluator> flat_;  // null in Reference mode
    /** One per lane; mutated during logically-const evaluation. */
    mutable std::vector<sched::EvalScratch> scratch_;
};

}  // namespace magma::exec

#endif  // MAGMA_EXEC_EVAL_ENGINE_H_
