#include "exec/eval_engine.h"

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace magma::exec {
namespace {

/** Engine-wide metrics, resolved once; per-batch cost is atomics. */
struct EngineMetrics {
    obs::Counter& batches;
    obs::Counter& candidates;
    obs::Counter& singles;
    obs::Counter& flatCandidates;
    obs::Counter& referenceCandidates;
    obs::Histogram& batchSize;
};

EngineMetrics&
engineMetrics()
{
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    static EngineMetrics m{reg.counter("exec.eval.batches"),
                           reg.counter("exec.eval.candidates"),
                           reg.counter("exec.eval.singles"),
                           reg.counter("sched.flat.candidates"),
                           reg.counter("sched.reference.candidates"),
                           reg.histogram("exec.eval.batch_size")};
    return m;
}

void
countBatch(size_t count, bool flat)
{
    if (!obs::countersOn())
        return;
    EngineMetrics& m = engineMetrics();
    m.batches.add();
    m.candidates.add(static_cast<int64_t>(count));
    (flat ? m.flatCandidates : m.referenceCandidates)
        .add(static_cast<int64_t>(count));
    m.batchSize.record(static_cast<double>(count));
}

}  // namespace

std::vector<double>
EvalEngine::evaluateBatch(const sched::Mapping* batch, size_t count) const
{
    countBatch(count, flat_ != nullptr);
    // span payload: i = batch size
    obs::Span span("exec.eval.batch", static_cast<int64_t>(count));
    PROFILE_SCOPE("exec.eval.batch");
    std::vector<double> fitness(count);
    if (flat_) {
        if (pool_->numThreads() == 1) {
            // Serial flat path: skip the pool's std::function dispatch —
            // one tight loop over lane 0's scratch.
            sched::EvalScratch& s = scratch_[0];
            for (size_t i = 0; i < count; ++i)
                fitness[i] = flat_->fitness(batch[i], s);
        } else {
            pool_->parallelForLane(
                static_cast<int64_t>(count), [&](int lane, int64_t i) {
                    fitness[i] = flat_->fitness(batch[i], scratch_[lane]);
                });
        }
    } else {
        pool_->parallelFor(static_cast<int64_t>(count), [&](int64_t i) {
            fitness[i] = eval_->fitness(batch[i]);
        });
    }
    return fitness;
}

std::vector<sched::SimPoint>
EvalEngine::simulateBatch(const sched::Mapping* batch, size_t count) const
{
    countBatch(count, flat_ != nullptr);
    // span payload: i = batch size
    obs::Span span("exec.eval.sim_batch", static_cast<int64_t>(count));
    PROFILE_SCOPE("exec.eval.sim_batch");
    std::vector<sched::SimPoint> out(count);
    if (flat_) {
        auto one = [this](const sched::Mapping& m, sched::EvalScratch& s) {
            eval_->countSample();
            flat_->simulate(m, s, false);
            return sched::SimPoint{s.makespanSeconds(),
                                   flat_->totalJoules(m)};
        };
        if (pool_->numThreads() == 1) {
            sched::EvalScratch& s = scratch_[0];
            for (size_t i = 0; i < count; ++i)
                out[i] = one(batch[i], s);
        } else {
            pool_->parallelForLane(
                static_cast<int64_t>(count), [&](int lane, int64_t i) {
                    out[i] = one(batch[i], scratch_[lane]);
                });
        }
    } else {
        pool_->parallelFor(static_cast<int64_t>(count), [&](int64_t i) {
            sched::ScheduleResult r = eval_->evaluate(batch[i]);
            out[i] = {r.makespanSeconds, eval_->totalJoules(batch[i])};
        });
    }
    return out;
}

double
EvalEngine::fitnessOne(const sched::Mapping& m) const
{
    if (obs::countersOn())
        engineMetrics().singles.add();
    if (flat_)
        return flat_->fitness(m, scratch_[0]);
    return eval_->fitness(m);
}

}  // namespace magma::exec
