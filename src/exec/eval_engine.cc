#include "exec/eval_engine.h"

namespace magma::exec {

std::vector<double>
EvalEngine::evaluateBatch(const sched::Mapping* batch, size_t count) const
{
    std::vector<double> fitness(count);
    pool_->parallelFor(static_cast<int64_t>(count), [&](int64_t i) {
        fitness[i] = eval_->fitness(batch[i]);
    });
    return fitness;
}

}  // namespace magma::exec
