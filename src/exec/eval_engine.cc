#include "exec/eval_engine.h"

namespace magma::exec {

std::vector<double>
EvalEngine::evaluateBatch(const sched::Mapping* batch, size_t count) const
{
    std::vector<double> fitness(count);
    if (flat_) {
        if (pool_->numThreads() == 1) {
            // Serial flat path: skip the pool's std::function dispatch —
            // one tight loop over lane 0's scratch.
            sched::EvalScratch& s = scratch_[0];
            for (size_t i = 0; i < count; ++i)
                fitness[i] = flat_->fitness(batch[i], s);
        } else {
            pool_->parallelForLane(
                static_cast<int64_t>(count), [&](int lane, int64_t i) {
                    fitness[i] = flat_->fitness(batch[i], scratch_[lane]);
                });
        }
    } else {
        pool_->parallelFor(static_cast<int64_t>(count), [&](int64_t i) {
            fitness[i] = eval_->fitness(batch[i]);
        });
    }
    return fitness;
}

std::vector<sched::SimPoint>
EvalEngine::simulateBatch(const sched::Mapping* batch, size_t count) const
{
    std::vector<sched::SimPoint> out(count);
    if (flat_) {
        auto one = [this](const sched::Mapping& m, sched::EvalScratch& s) {
            eval_->countSample();
            flat_->simulate(m, s, false);
            return sched::SimPoint{s.makespanSeconds(),
                                   flat_->totalJoules(m)};
        };
        if (pool_->numThreads() == 1) {
            sched::EvalScratch& s = scratch_[0];
            for (size_t i = 0; i < count; ++i)
                out[i] = one(batch[i], s);
        } else {
            pool_->parallelForLane(
                static_cast<int64_t>(count), [&](int lane, int64_t i) {
                    out[i] = one(batch[i], scratch_[lane]);
                });
        }
    } else {
        pool_->parallelFor(static_cast<int64_t>(count), [&](int64_t i) {
            sched::ScheduleResult r = eval_->evaluate(batch[i]);
            out[i] = {r.makespanSeconds, eval_->totalJoules(batch[i])};
        });
    }
    return out;
}

double
EvalEngine::fitnessOne(const sched::Mapping& m) const
{
    if (flat_)
        return flat_->fitness(m, scratch_[0]);
    return eval_->fitness(m);
}

}  // namespace magma::exec
