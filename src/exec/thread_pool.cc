#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace magma::exec {
namespace {

/** Pool-wide metrics, resolved once so the per-batch cost is atomics. */
struct PoolMetrics {
    obs::Counter& batches;
    obs::Histogram& batchSize;
    obs::Histogram& batchSeconds;
};

PoolMetrics&
poolMetrics()
{
    static PoolMetrics m{
        obs::MetricsRegistry::global().counter("exec.pool.batches"),
        obs::MetricsRegistry::global().histogram("exec.pool.batch_size"),
        obs::MetricsRegistry::global().histogram("exec.pool.batch_seconds")};
    return m;
}

}  // namespace

int
ThreadPool::defaultThreads()
{
    // getenv is safe here: read before any pool thread starts, and
    // nothing in this process calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("MAGMA_THREADS")) {
        int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
    : threads_(std::max(1, threads > 0 ? threads : defaultThreads()))
{
    workers_.reserve(threads_ - 1);
    for (int i = 0; i < threads_ - 1; ++i)
        workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    batch_ready_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::drainBatch(int lane)
{
    // Memory order (audited; see docs/concurrency.md): the claim
    // counter is relaxed because only its ATOMICITY matters — each
    // index is handed to exactly one lane. All data ordering rides on
    // mu_: the batch fields (job_, job_size_) and the caller's input
    // buffers are written before the epoch bump under mu_, and workers
    // read the epoch under mu_ before arriving here; results written by
    // fn(i) are read by the caller only after the batch-done wait on
    // the same mutex.
    while (true) {
        int64_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_size_)
            return;
        try {
            (*job_)(lane, i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!error_)
                error_ = std::current_exception();
            // Cancel the rest of the batch: iterations not yet claimed
            // are abandoned, in-flight ones finish. Relaxed is fine —
            // a racing fetch_add can momentarily observe a smaller
            // index, claim one more iteration, and stop on the next
            // spin; the error itself travels under mu_.
            cursor_.store(job_size_, std::memory_order_relaxed);
        }
    }
}

void
ThreadPool::workerLoop(int lane)
{
    uint64_t seen_epoch = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            batch_ready_.wait(lock, [&] {
                return stop_ || epoch_ != seen_epoch;
            });
            if (stop_)
                return;
            seen_epoch = epoch_;
        }
        drainBatch(lane);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--active_workers_ == 0)
                batch_done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(int64_t n, const std::function<void(int64_t)>& fn)
{
    parallelForLane(n, [&fn](int, int64_t i) { fn(i); });
}

void
ThreadPool::parallelForLane(int64_t n,
                            const std::function<void(int, int64_t)>& fn)
{
    if (n <= 0)
        return;

    PROFILE_SCOPE("exec.pool.dispatch");

    // Observability: one branch when off; batches that throw go
    // unrecorded (the exception is the signal there).
    const bool measured = obs::countersOn();
    double t0 = 0.0;
    if (measured)
        t0 = obs::Tracer::global().nowSeconds();

    if (workers_.empty() || n == 1) {
        // Serial fast path: no locking, same iteration semantics; all
        // iterations run on the calling thread, lane 0.
        for (int64_t i = 0; i < n; ++i)
            fn(0, i);
        if (measured) {
            PoolMetrics& m = poolMetrics();
            m.batches.add();
            m.batchSize.record(static_cast<double>(n));
            m.batchSeconds.record(obs::Tracer::global().nowSeconds() - t0);
        }
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = &fn;
        job_size_ = n;
        cursor_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        active_workers_ = static_cast<int>(workers_.size());
        ++epoch_;
    }
    batch_ready_.notify_all();

    // The calling thread is a full participant, always lane 0.
    drainBatch(0);

    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [&] { return active_workers_ == 0; });
    job_ = nullptr;
    if (error_)
        std::rethrow_exception(std::exchange(error_, nullptr));
    if (measured) {
        PoolMetrics& m = poolMetrics();
        m.batches.add();
        m.batchSize.record(static_cast<double>(n));
        m.batchSeconds.record(obs::Tracer::global().nowSeconds() - t0);
    }
}

}  // namespace magma::exec
