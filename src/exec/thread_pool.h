#ifndef MAGMA_EXEC_THREAD_POOL_H_
#define MAGMA_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace magma::exec {

/**
 * Fixed-size worker pool with a blocking `parallelFor` batch API — the
 * execution substrate of the search engine (ROADMAP: batching + hot-path
 * speedups). One pool is meant to live for a whole search (or process)
 * so generation after generation reuses the same workers.
 *
 * Concurrency model:
 *  - `ThreadPool(n)` provides `n` lanes of concurrency: `n - 1` worker
 *    threads plus the calling thread, which always participates in
 *    `parallelFor`. `n <= 1` therefore spawns no threads at all and
 *    `parallelFor` degenerates to a plain serial loop — the serial and
 *    parallel paths share one code path.
 *  - `parallelFor(n, fn)` invokes `fn(i)` exactly once for every
 *    `i in [0, n)`, dynamically load-balanced via an atomic cursor, and
 *    returns only when all iterations finished.
 *  - Exception-safe: the first exception thrown by any `fn(i)` is
 *    captured, remaining iterations are cancelled, and the exception is
 *    rethrown on the calling thread after the batch quiesces.
 *
 * `parallelFor` must not be called concurrently from two threads on the
 * same pool (one in-flight batch at a time), and `fn` must not recurse
 * into the same pool.
 */
class ThreadPool {
  public:
    /** `threads <= 0` selects defaultThreads(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total concurrency (workers + calling thread), >= 1. */
    int numThreads() const { return threads_; }

    /**
     * Run `fn(i)` for every i in [0, n); blocks until done. Rethrows the
     * first exception raised by any iteration.
     */
    void parallelFor(int64_t n, const std::function<void(int64_t)>& fn);

    /**
     * Like parallelFor, but `fn(lane, i)` also receives the lane index
     * of the executing thread — 0 for the calling thread, 1..numThreads-1
     * for the workers. Lane indices are stable for the pool's lifetime,
     * so callers can keep one mutable scratch object per lane (the
     * EvalEngine's per-worker EvalScratch) without locking: a lane never
     * runs two iterations concurrently.
     */
    void parallelForLane(int64_t n,
                         const std::function<void(int, int64_t)>& fn);

    /**
     * Thread count picked when none is given: the MAGMA_THREADS
     * environment variable if set to a positive integer, otherwise
     * std::thread::hardware_concurrency().
     */
    static int defaultThreads();

  private:
    void workerLoop(int lane);
    /** Pull iterations off the shared cursor until the batch is drained. */
    void drainBatch(int lane);

    int threads_ = 1;
    std::vector<std::thread> workers_;

    // One in-flight batch, guarded by mu_.
    std::mutex mu_;
    std::condition_variable batch_ready_;
    std::condition_variable batch_done_;
    const std::function<void(int, int64_t)>* job_ = nullptr;
    int64_t job_size_ = 0;
    uint64_t epoch_ = 0;          ///< bumped per batch so workers wake once
    int active_workers_ = 0;      ///< workers still inside the batch
    std::exception_ptr error_;    ///< first exception of the batch
    bool stop_ = false;

    std::atomic<int64_t> cursor_{0};
};

}  // namespace magma::exec

#endif  // MAGMA_EXEC_THREAD_POOL_H_
