#include "exec/cost_cache.h"

#include <cstdio>
#include <cstring>
#include <functional>
#include <mutex>

#include "cost/dataflow.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace magma::exec {
namespace {

/**
 * Append a double's exact bit pattern (hex) — std::to_string would round
 * to 6 decimals and let nearby configs collide on one key.
 */
void
appendBits(std::string& key, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(bits));
    key += buf;
}

}  // namespace

CostCache::CostCache(int shards)
    : shards_(new Shard[shards > 0 ? shards : 1]),
      num_shards_(shards > 0 ? shards : 1)
{}

std::string
CostCache::makeKey(const cost::CostModel& model,
                   const dnn::LayerShape& layer, int batch,
                   const cost::SubAccelConfig& cfg, int bw_bucket)
{
    const cost::EnergyParams& e = model.energy();
    std::string key = layer.toString();
    key += '|';
    key += std::to_string(batch);
    key += '|';
    key += cost::dataflowName(cfg.dataflow);
    key += '|';
    key += std::to_string(cfg.rows);
    key += 'x';
    key += std::to_string(cfg.cols);
    key += '|';
    appendBits(key, cfg.slBytes);
    appendBits(key, cfg.sgBytes);
    appendBits(key, cfg.freqGhz);
    appendBits(key, cfg.bytesPerElem);
    appendBits(key, cfg.nocElemsPerCycle);
    appendBits(key, cfg.nocLatency);
    key += cfg.flexibleShape ? '1' : '0';
    appendBits(key, e.macPj);
    appendBits(key, e.slPj);
    appendBits(key, e.sgPj);
    appendBits(key, e.dramPjPerByte);
    key += std::to_string(bw_bucket);
    return key;
}

CostCache::Shard&
CostCache::shardFor(const std::string& key)
{
    size_t h = std::hash<std::string>{}(key);
    return shards_[h % num_shards_];
}

cost::CostResult
CostCache::analyze(const cost::CostModel& model, const dnn::LayerShape& layer,
                   int batch, const cost::SubAccelConfig& cfg, int bw_bucket)
{
    PROFILE_SCOPE("exec.cost_cache.probe");
    std::string key = makeKey(model, layer, batch, cfg, bw_bucket);
    Shard& shard = shardFor(key);

    {
        std::shared_lock<std::shared_mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }

    misses_.fetch_add(1, std::memory_order_relaxed);
    cost::CostResult r = model.analyze(layer, batch, cfg);

    std::unique_lock<std::shared_mutex> lock(shard.mu);
    // A racing miss may have inserted first; keep the existing entry so
    // every reader observes one canonical value.
    auto [it, inserted] = shard.map.emplace(key, r);
    return it->second;
}

CostCacheStats
CostCache::stats() const
{
    CostCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    for (int i = 0; i < num_shards_; ++i) {
        std::shared_lock<std::shared_mutex> lock(shards_[i].mu);
        s.entries += static_cast<int64_t>(shards_[i].map.size());
    }
    return s;
}

void
CostCache::clear()
{
    for (int i = 0; i < num_shards_; ++i) {
        std::unique_lock<std::shared_mutex> lock(shards_[i].mu);
        shards_[i].map.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

CostCache&
CostCache::global()
{
    static CostCache cache(16);
    // Pull-model gauges: the cache keeps its own atomics and mirrors
    // them into the registry only when a snapshot is taken, so the
    // analyze() hot path pays nothing for observability.
    static bool registered = [] {
        obs::MetricsRegistry::global().addGaugeProvider(
            [](obs::MetricsRegistry& reg) {
                CostCacheStats s = CostCache::global().stats();
                reg.gauge("exec.cost_cache.hits")
                    .set(static_cast<double>(s.hits));
                reg.gauge("exec.cost_cache.misses")
                    .set(static_cast<double>(s.misses));
                reg.gauge("exec.cost_cache.entries")
                    .set(static_cast<double>(s.entries));
                reg.gauge("exec.cost_cache.hit_rate").set(s.hitRate());
            });
        return true;
    }();
    (void)registered;
    return cache;
}

}  // namespace magma::exec
