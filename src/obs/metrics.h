#ifndef MAGMA_OBS_METRICS_H_
#define MAGMA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace magma::obs {

/**
 * Process-wide instrumentation level (the MAGMA_METRICS env var and the
 * opt::SearchOptions::metrics knob):
 *   Off      — instrumentation sites record nothing at all,
 *   Counters — counters/gauges/histograms record (the cheap always-on
 *              default; relaxed atomics on the hot path),
 *   Trace    — Counters plus obs::Span events into the per-thread trace
 *              rings (adds clock reads per span),
 *   Profile  — Trace plus PROFILE_SCOPE wall-clock attribution into the
 *              hierarchical obs::Profiler (adds clock reads per scope).
 * The level only gates what is OBSERVED: search results are bitwise
 * identical at every level (instrumentation never touches RNG streams,
 * fitness math or scheduling decisions — CI asserts off-vs-trace CLI
 * output equality).
 *
 * Inherit is only meaningful for per-search overrides (SearchOptions):
 * it resolves to the process level at use.
 */
enum class MetricsLevel { Off, Counters, Trace, Profile, Inherit };

/** Level name ("off", "counters", "trace", "profile"). */
std::string metricsLevelName(MetricsLevel level);

/** Parse a metricsLevelName(); throws std::invalid_argument. */
MetricsLevel metricsLevelFromName(const std::string& name);

/**
 * Current process level: first call reads MAGMA_METRICS (unset or
 * unparsable selects Counters), later calls return the cached — or
 * setMetricsLevel()-overridden — value. Lock-free after initialization.
 */
MetricsLevel metricsLevel();

/** Override the process level (tests, CLIs with an explicit flag). */
void setMetricsLevel(MetricsLevel level);

/** True when counters/gauges/histograms should record. */
inline bool
countersOn()
{
    return metricsLevel() != MetricsLevel::Off;
}

/** True when span tracing should record (Trace and above). */
inline bool
traceOn()
{
    MetricsLevel level = metricsLevel();
    return level == MetricsLevel::Trace || level == MetricsLevel::Profile;
}

/** True when PROFILE_SCOPE sites should record. */
inline bool
profileOn()
{
    return metricsLevel() == MetricsLevel::Profile;
}

/** Resolve a per-search override against the process level. */
inline MetricsLevel
effectiveLevel(MetricsLevel override_level)
{
    return override_level == MetricsLevel::Inherit ? metricsLevel()
                                                   : override_level;
}

/**
 * Monotonic event counter. Hot path is one relaxed atomic add; callers
 * hold the reference returned by MetricsRegistry::counter() so the
 * registry mutex is paid once per site, not per event.
 *
 * Memory order (see docs/concurrency.md): relaxed is correct because a
 * Counter publishes nothing but its own value — no reader uses it to
 * conclude that some other memory is initialized or some phase is over.
 * Readers that need exactness (tests, end-of-run snapshots) already
 * synchronize through thread join or the registry mutex.
 */
class Counter {
  public:
    void add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * Last-write-wins instantaneous value (queue depths, rates, sizes).
 * Memory order: relaxed for the same reason as Counter — the value is
 * standalone telemetry; nothing is ordered against it.
 */
class Gauge {
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/** Sparse, order-preserving (index, count) pairs of occupied buckets. */
using HistogramBuckets = std::vector<std::pair<int32_t, uint64_t>>;

/**
 * Log-bucketed HDR-style histogram of positive doubles (latencies,
 * sizes). Layout: each power-of-two octave is split into kSubBuckets
 * linear sub-buckets, so any recorded value lands in a bucket whose
 * width is <= 1/kSubBuckets of its magnitude — quantiles read back with
 * <= ~3.2% relative error over the whole ~[1e-19, 1e19] dynamic range,
 * with min and max tracked exactly. Values outside the range saturate
 * into the bottom/top bucket (still counted; the exact min/max are what
 * quantile() returns at the extremes, so saturation never fabricates a
 * value). Non-positive and non-finite values count into the dedicated
 * underflow bucket 0.
 *
 * Thread-safety: record() is lock-free — one relaxed atomic add on the
 * bucket plus relaxed count/sum and CAS min/max updates. merge() folds
 * another histogram in (the per-thread-shard pattern); snapshots taken
 * while writers are active are internally consistent per-bucket but may
 * trail in-flight records, which is fine for telemetry.
 *
 * Memory order (audited; see docs/concurrency.md): every access is
 * relaxed because each field is independently meaningful telemetry —
 * the histogram publishes no pointer or flag another thread would
 * dereference on the strength of these values, so no acquire/release
 * edge is needed. A concurrent reader can observe count_ ahead of the
 * matching bucket add (or vice versa); that skew is bounded by the
 * number of in-flight record() calls and collapses to zero at every
 * real read point (thread join or registry-mutex snapshot). reset() is
 * the one non-concurrent-safe member and is documented as such.
 */
class Histogram {
  public:
    /** Sub-buckets per octave; power of two so indexing is shift/mask. */
    static constexpr int kSubBuckets = 16;
    /** frexp exponent range covered before saturation. */
    static constexpr int kMinExp = -64;
    static constexpr int kMaxExp = 64;
    /** Bucket 0 counts non-positive/non-finite values. */
    static constexpr int kNumBuckets =
        1 + (kMaxExp - kMinExp) * kSubBuckets;

    Histogram();

    /** Record one value. Lock-free. */
    void record(double v);

    int64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    /** Exact smallest/largest recorded value; 0 when empty. */
    double min() const;
    double max() const;
    double mean() const;

    /**
     * Value at quantile q in [0, 1]: exact min at the bottom, exact max
     * at the top and in the saturated top bucket, bucket-midpoint
     * (<= ~3.2% relative error) in between. 0 when empty.
     */
    double quantile(double q) const;

    /** Fold `other` into this (per-thread shard merge). */
    void merge(const Histogram& other);

    /** Drop every sample. Not safe against concurrent record(). */
    void reset();

    /** Occupied buckets, ascending by index. */
    HistogramBuckets buckets() const;

    /** Bucket index a value lands in (also used by snapshot parsing). */
    static int bucketIndex(double v);
    /** Midpoint representative of a bucket (inverse-ish of bucketIndex). */
    static double bucketValue(int index);

    /**
     * The quantile walk shared with HistogramSnap: value at quantile q
     * of `buckets` given exact count/min/max. Keeping one definition
     * makes live and round-tripped snapshots answer identically.
     */
    static double quantileOf(const HistogramBuckets& buckets, int64_t count,
                             double min, double max, double q);

  private:
    std::atomic<uint64_t> buckets_[kNumBuckets];
    std::atomic<int64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_;
    std::atomic<double> max_;
};

/**
 * Process-wide named-metric registry (the tentpole of src/obs/): one
 * place every subsystem publishes counters, gauges and histograms, and
 * one place SnapshotWriter drains them from. Lookup takes the registry
 * mutex; the returned references are stable for the registry's lifetime,
 * so instrumentation sites resolve a name once and then run lock-free.
 *
 * Names are dotted paths ("exec.eval.candidates",
 * "serve.wait_seconds.tenant-0"); each kind has its own namespace.
 *
 * Gauge providers are pull-model callbacks run by snapshot() right
 * before reading, so subsystems with their own internal counters (the
 * exec::CostCache) publish point-in-time gauges without a write per
 * event.
 *
 * MetricsRegistry::global() is the process registry; instantiating one
 * locally isolates a component's metrics (bench_serve_throughput keys
 * one per trace replay so configurations don't bleed into each other).
 */
class MetricsRegistry {
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** Look up without creating; null when the name is absent. */
    const Counter* findCounter(const std::string& name) const;
    const Gauge* findGauge(const std::string& name) const;
    const Histogram* findHistogram(const std::string& name) const;

    /** Run fn(registry) before every snapshot()/visit() read. */
    void addGaugeProvider(std::function<void(MetricsRegistry&)> fn);

    /**
     * Run the gauge providers, then visit every metric (name-sorted per
     * kind) — the substrate of SnapshotWriter::capture.
     */
    void visit(
        const std::function<void(const std::string&, const Counter&)>& c,
        const std::function<void(const std::string&, const Gauge&)>& g,
        const std::function<void(const std::string&, const Histogram&)>& h);

    /** Zero every metric (keeps registrations and providers). */
    void reset();

    static MetricsRegistry& global();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::vector<std::function<void(MetricsRegistry&)>> providers_;
};

}  // namespace magma::obs

#endif  // MAGMA_OBS_METRICS_H_
