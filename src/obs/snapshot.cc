#include "obs/snapshot.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace magma::obs {

namespace {

/**
 * Double equality for round-trip checks: bit-identical, except all NaNs
 * compare equal (non-finite values serialize as JSON null and parse
 * back as quiet NaN).
 */
bool
numEq(double a, double b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool
spanEq(const TraceEvent& a, const TraceEvent& b)
{
    return a.name == b.name && numEq(a.startSeconds, b.startSeconds) &&
           numEq(a.durSeconds, b.durSeconds) && a.thread == b.thread &&
           a.i == b.i && numEq(a.a, b.a) && numEq(a.b, b.b);
}

/**
 * Minimal recursive-descent parser for the JSON subset JsonWriter
 * emits (objects, arrays, strings with escapes, %.17g numbers, bools,
 * null). Structure-driven: MetricsSnapshot::fromJson walks the exact
 * schema-1 snapshot shape through it and throws std::invalid_argument
 * on anything else.
 */
class JsonCursor {
  public:
    explicit JsonCursor(const std::string& text) : s_(text) {}

    void ws()
    {
        while (p_ < s_.size() &&
               (s_[p_] == ' ' || s_[p_] == '\t' || s_[p_] == '\n' ||
                s_[p_] == '\r'))
            ++p_;
    }

    bool tryConsume(char c)
    {
        ws();
        if (p_ < s_.size() && s_[p_] == c) {
            ++p_;
            return true;
        }
        return false;
    }

    void expect(char c)
    {
        if (!tryConsume(c))
            fail(std::string("expected '") + c + "'");
    }

    char peek()
    {
        ws();
        return p_ < s_.size() ? s_[p_] : '\0';
    }

    bool atEnd()
    {
        ws();
        return p_ >= s_.size();
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (p_ < s_.size() && s_[p_] != '"') {
            char c = s_[p_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p_ >= s_.size())
                fail("unterminated escape");
            char e = s_[p_++];
            switch (e) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            case 'r':
                out += '\r';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                if (p_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = s_[p_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // JsonWriter only emits \u00XX for control bytes; wider
                // code points would need UTF-8 encoding we never produce.
                if (code > 0xFF)
                    fail("unsupported \\u escape > 0xFF");
                out += static_cast<char>(code);
                break;
            }
            default:
                fail("unknown escape");
            }
        }
        expect('"');
        return out;
    }

    /** Number or null (null -> quiet NaN, JsonWriter's non-finite form). */
    double parseNumber()
    {
        ws();
        if (s_.compare(p_, 4, "null") == 0) {
            p_ += 4;
            return std::numeric_limits<double>::quiet_NaN();
        }
        const char* begin = s_.c_str() + p_;
        char* end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin)
            fail("expected number");
        p_ += static_cast<size_t>(end - begin);
        return v;
    }

    int64_t parseInt()
    {
        ws();
        const char* begin = s_.c_str() + p_;
        char* end = nullptr;
        long long v = std::strtoll(begin, &end, 10);
        if (end == begin)
            fail("expected integer");
        p_ += static_cast<size_t>(end - begin);
        return v;
    }

    bool parseBool()
    {
        ws();
        if (s_.compare(p_, 4, "true") == 0) {
            p_ += 4;
            return true;
        }
        if (s_.compare(p_, 5, "false") == 0) {
            p_ += 5;
            return false;
        }
        fail("expected bool");
        return false;
    }

    [[noreturn]] void fail(const std::string& why)
    {
        throw std::invalid_argument(
            "MetricsSnapshot::fromJson: " + why + " at offset " +
            std::to_string(p_));
    }

  private:
    const std::string& s_;
    size_t p_ = 0;
};

/**
 * Iterate "key": value pairs of the object whose '{' is already
 * consumed; fn(key) must consume the value. Consumes the closing '}'.
 */
template <typename Fn>
void
forEachKey(JsonCursor& c, Fn&& fn)
{
    if (c.tryConsume('}'))
        return;
    do {
        std::string key = c.parseString();
        c.expect(':');
        fn(key);
    } while (c.tryConsume(','));
    c.expect('}');
}

}  // namespace

// ----------------------------------------------------------- equality ---

bool
GaugeSnap::operator==(const GaugeSnap& o) const
{
    return name == o.name && numEq(value, o.value);
}

bool
HistogramSnap::operator==(const HistogramSnap& o) const
{
    return name == o.name && count == o.count && numEq(sum, o.sum) &&
           numEq(min, o.min) && numEq(max, o.max) && buckets == o.buckets;
}

bool
MetricsSnapshot::operator==(const MetricsSnapshot& o) const
{
    if (source != o.source || level != o.level ||
        counters != o.counters || gauges != o.gauges ||
        histograms != o.histograms || spansDropped != o.spansDropped ||
        spans.size() != o.spans.size())
        return false;
    for (size_t i = 0; i < spans.size(); ++i)
        if (!spanEq(spans[i], o.spans[i]))
            return false;
    return true;
}

// ------------------------------------------------------------- lookup ---

const CounterSnap*
MetricsSnapshot::findCounter(const std::string& name) const
{
    for (const CounterSnap& c : counters)
        if (c.name == name)
            return &c;
    return nullptr;
}

const GaugeSnap*
MetricsSnapshot::findGauge(const std::string& name) const
{
    for (const GaugeSnap& g : gauges)
        if (g.name == name)
            return &g;
    return nullptr;
}

const HistogramSnap*
MetricsSnapshot::findHistogram(const std::string& name) const
{
    for (const HistogramSnap& h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

// -------------------------------------------------------------- toJson ---

std::string
MetricsSnapshot::toJson() const
{
    JsonWriter w;
    w.beginTelemetry("metrics_snapshot");
    w.beginObject("config");
    w.field("source", source);
    w.field("level", metricsLevelName(level));
    w.endObject();
    w.beginObject("metrics");
    w.field("counters", static_cast<int64_t>(counters.size()));
    w.field("gauges", static_cast<int64_t>(gauges.size()));
    w.field("histograms", static_cast<int64_t>(histograms.size()));
    w.field("spans", static_cast<int64_t>(spans.size()));
    w.field("spans_dropped", spansDropped);
    w.endObject();
    w.beginArray("samples");
    for (const CounterSnap& c : counters) {
        w.beginObject();
        w.field("kind", "counter");
        w.field("name", c.name);
        w.field("value", c.value);
        w.endObject();
    }
    for (const GaugeSnap& g : gauges) {
        w.beginObject();
        w.field("kind", "gauge");
        w.field("name", g.name);
        w.field("value", g.value);
        w.endObject();
    }
    for (const HistogramSnap& h : histograms) {
        w.beginObject();
        w.field("kind", "histogram");
        w.field("name", h.name);
        w.field("count", h.count);
        w.field("sum", h.sum);
        w.field("min", h.min);
        w.field("max", h.max);
        w.field("p50", h.quantile(0.50));
        w.field("p90", h.quantile(0.90));
        w.field("p99", h.quantile(0.99));
        w.beginArray("buckets");
        for (const auto& [index, count] : h.buckets) {
            w.beginArray();
            w.element(static_cast<int64_t>(index));
            w.element(count);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    for (const TraceEvent& e : spans) {
        w.beginObject();
        w.field("kind", "span");
        w.field("name", e.name);
        w.field("thread", e.thread);
        w.field("start_seconds", e.startSeconds);
        w.field("dur_seconds", e.durSeconds);
        w.field("i", e.i);
        w.field("a", e.a);
        w.field("b", e.b);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

// ------------------------------------------------------------ fromJson ---

MetricsSnapshot
MetricsSnapshot::fromJson(const std::string& text)
{
    JsonCursor c(text);
    MetricsSnapshot s;
    bool sawSchema = false, sawSamples = false;

    c.expect('{');
    forEachKey(c, [&](const std::string& key) {
        if (key == "schema") {
            if (c.parseInt() != kTelemetrySchemaVersion)
                c.fail("unsupported schema version");
            sawSchema = true;
        } else if (key == "bench") {
            if (c.parseString() != "metrics_snapshot")
                c.fail("not a metrics_snapshot artifact");
        } else if (key == "config") {
            c.expect('{');
            forEachKey(c, [&](const std::string& k) {
                if (k == "source")
                    s.source = c.parseString();
                else if (k == "level")
                    s.level = metricsLevelFromName(c.parseString());
                else
                    c.fail("unknown config key '" + k + "'");
            });
        } else if (key == "metrics") {
            // Redundant size echoes for CI tooling; validated against
            // the samples below only loosely (parse + discard).
            c.expect('{');
            forEachKey(c, [&](const std::string& k) {
                if (k == "spans_dropped")
                    s.spansDropped = c.parseInt();
                else
                    c.parseInt();
            });
        } else if (key == "samples") {
            sawSamples = true;
            c.expect('[');
            if (!c.tryConsume(']')) {
                do {
                    c.expect('{');
                    std::string kind, name;
                    CounterSnap cs;
                    GaugeSnap gs;
                    HistogramSnap hs;
                    TraceEvent ev;
                    forEachKey(c, [&](const std::string& k) {
                        if (k == "kind")
                            kind = c.parseString();
                        else if (k == "name")
                            name = c.parseString();
                        else if (k == "value" && kind == "counter")
                            cs.value = c.parseInt();
                        else if (k == "value")
                            gs.value = c.parseNumber();
                        else if (k == "count")
                            hs.count = c.parseInt();
                        else if (k == "sum")
                            hs.sum = c.parseNumber();
                        else if (k == "min")
                            hs.min = c.parseNumber();
                        else if (k == "max")
                            hs.max = c.parseNumber();
                        else if (k == "p50" || k == "p90" || k == "p99")
                            c.parseNumber();  // derived; recomputed
                        else if (k == "buckets") {
                            c.expect('[');
                            if (!c.tryConsume(']')) {
                                do {
                                    c.expect('[');
                                    int64_t index = c.parseInt();
                                    c.expect(',');
                                    int64_t count = c.parseInt();
                                    c.expect(']');
                                    hs.buckets.emplace_back(
                                        static_cast<int32_t>(index),
                                        static_cast<uint64_t>(count));
                                } while (c.tryConsume(','));
                                c.expect(']');
                            }
                        } else if (k == "thread")
                            ev.thread = static_cast<int>(c.parseInt());
                        else if (k == "start_seconds")
                            ev.startSeconds = c.parseNumber();
                        else if (k == "dur_seconds")
                            ev.durSeconds = c.parseNumber();
                        else if (k == "i")
                            ev.i = c.parseInt();
                        else if (k == "a")
                            ev.a = c.parseNumber();
                        else if (k == "b")
                            ev.b = c.parseNumber();
                        else
                            c.fail("unknown sample key '" + k + "'");
                    });
                    if (kind == "counter") {
                        cs.name = name;
                        s.counters.push_back(std::move(cs));
                    } else if (kind == "gauge") {
                        gs.name = name;
                        s.gauges.push_back(std::move(gs));
                    } else if (kind == "histogram") {
                        hs.name = name;
                        s.histograms.push_back(std::move(hs));
                    } else if (kind == "span") {
                        ev.name = name;
                        s.spans.push_back(std::move(ev));
                    } else {
                        c.fail("unknown sample kind '" + kind + "'");
                    }
                } while (c.tryConsume(','));
                c.expect(']');
            }
        } else {
            c.fail("unknown top-level key '" + key + "'");
        }
    });
    if (!c.atEnd())
        c.fail("trailing content");
    if (!sawSchema || !sawSamples)
        c.fail("missing schema/samples");
    return s;
}

// ------------------------------------------------------ SnapshotWriter ---

MetricsSnapshot
SnapshotWriter::capture(const std::string& source, MetricsRegistry& reg,
                        Tracer* tracer)
{
    MetricsSnapshot s;
    s.source = source;
    s.level = metricsLevel();
    reg.visit(
        [&](const std::string& name, const Counter& c) {
            s.counters.push_back({name, c.value()});
        },
        [&](const std::string& name, const Gauge& g) {
            s.gauges.push_back({name, g.value()});
        },
        [&](const std::string& name, const Histogram& h) {
            HistogramSnap snap;
            snap.name = name;
            snap.count = h.count();
            snap.sum = h.sum();
            snap.min = h.min();
            snap.max = h.max();
            snap.buckets = h.buckets();
            s.histograms.push_back(std::move(snap));
        });
    if (tracer && s.level == MetricsLevel::Trace)
        s.spans = tracer->drain(&s.spansDropped);
    return s;
}

MetricsSnapshot
SnapshotWriter::captureGlobal(const std::string& source)
{
    return capture(source, MetricsRegistry::global(), &Tracer::global());
}

bool
SnapshotWriter::write(const MetricsSnapshot& snap, const std::string& path)
{
    std::string text = snap.toJson();
    {
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write metrics snapshot '%s'\n",
                         path.c_str());
            return false;
        }
        out << text << '\n';
    }
    std::ifstream in(path);
    std::string back((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    while (!back.empty() && back.back() == '\n')
        back.pop_back();
    try {
        if (!(MetricsSnapshot::fromJson(back) == snap)) {
            std::fprintf(stderr,
                         "metrics snapshot round-trip mismatch: %s\n",
                         path.c_str());
            return false;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "metrics snapshot re-parse failed: %s\n",
                     e.what());
        return false;
    }
    return true;
}

void
SnapshotWriter::beginBenchConfig(JsonWriter& w, const std::string& bench,
                                 bool full, uint64_t seed,
                                 const std::string& task,
                                 const std::string& setting,
                                 double systemBwGbps, int groupSize)
{
    w.beginTelemetry(bench);
    w.beginObject("config");
    w.field("full", full);
    w.field("seed", seed);
    w.field("task", task);
    w.field("setting", setting);
    w.field("system_bw_gbps", systemBwGbps);
    w.field("group_size", groupSize);
    // Caller appends its bench-specific config fields, then endObject().
}

}  // namespace magma::obs
