#include "obs/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/json_cursor.h"
#include "obs/profiler.h"

namespace magma::obs {

namespace {

bool
spanEq(const TraceEvent& a, const TraceEvent& b)
{
    return a.name == b.name && numEq(a.startSeconds, b.startSeconds) &&
           numEq(a.durSeconds, b.durSeconds) && a.thread == b.thread &&
           a.i == b.i && numEq(a.a, b.a) && numEq(a.b, b.b);
}

}  // namespace

// ----------------------------------------------------------- equality ---

bool
GaugeSnap::operator==(const GaugeSnap& o) const
{
    return name == o.name && numEq(value, o.value);
}

bool
HistogramSnap::operator==(const HistogramSnap& o) const
{
    return name == o.name && count == o.count && numEq(sum, o.sum) &&
           numEq(min, o.min) && numEq(max, o.max) && buckets == o.buckets;
}

bool
ProfileSnap::operator==(const ProfileSnap& o) const
{
    return path == o.path && count == o.count &&
           numEq(totalSeconds, o.totalSeconds) &&
           numEq(selfSeconds, o.selfSeconds);
}

bool
MetricsSnapshot::operator==(const MetricsSnapshot& o) const
{
    if (source != o.source || level != o.level ||
        counters != o.counters || gauges != o.gauges ||
        histograms != o.histograms || profile != o.profile ||
        spansDropped != o.spansDropped || spans.size() != o.spans.size())
        return false;
    for (size_t i = 0; i < spans.size(); ++i)
        if (!spanEq(spans[i], o.spans[i]))
            return false;
    return true;
}

// ------------------------------------------------------------- lookup ---

const CounterSnap*
MetricsSnapshot::findCounter(const std::string& name) const
{
    for (const CounterSnap& c : counters)
        if (c.name == name)
            return &c;
    return nullptr;
}

const GaugeSnap*
MetricsSnapshot::findGauge(const std::string& name) const
{
    for (const GaugeSnap& g : gauges)
        if (g.name == name)
            return &g;
    return nullptr;
}

const HistogramSnap*
MetricsSnapshot::findHistogram(const std::string& name) const
{
    for (const HistogramSnap& h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

// -------------------------------------------------------------- toJson ---

std::string
MetricsSnapshot::toJson() const
{
    JsonWriter w;
    w.beginTelemetry("metrics_snapshot");
    w.beginObject("config");
    w.field("source", source);
    w.field("level", metricsLevelName(level));
    w.endObject();
    w.beginObject("metrics");
    w.field("counters", static_cast<int64_t>(counters.size()));
    w.field("gauges", static_cast<int64_t>(gauges.size()));
    w.field("histograms", static_cast<int64_t>(histograms.size()));
    w.field("spans", static_cast<int64_t>(spans.size()));
    w.field("spans_dropped", spansDropped);
    w.field("profile_nodes", static_cast<int64_t>(profile.size()));
    w.endObject();
    w.beginArray("samples");
    for (const CounterSnap& c : counters) {
        w.beginObject();
        w.field("kind", "counter");
        w.field("name", c.name);
        w.field("value", c.value);
        w.endObject();
    }
    for (const GaugeSnap& g : gauges) {
        w.beginObject();
        w.field("kind", "gauge");
        w.field("name", g.name);
        w.field("value", g.value);
        w.endObject();
    }
    for (const HistogramSnap& h : histograms) {
        w.beginObject();
        w.field("kind", "histogram");
        w.field("name", h.name);
        w.field("count", h.count);
        w.field("sum", h.sum);
        w.field("min", h.min);
        w.field("max", h.max);
        w.field("p50", h.quantile(0.50));
        w.field("p90", h.quantile(0.90));
        w.field("p99", h.quantile(0.99));
        w.beginArray("buckets");
        for (const auto& [index, count] : h.buckets) {
            w.beginArray();
            w.element(static_cast<int64_t>(index));
            w.element(count);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    for (const TraceEvent& e : spans) {
        w.beginObject();
        w.field("kind", "span");
        w.field("name", e.name);
        w.field("thread", e.thread);
        w.field("start_seconds", e.startSeconds);
        w.field("dur_seconds", e.durSeconds);
        w.field("i", e.i);
        w.field("a", e.a);
        w.field("b", e.b);
        w.endObject();
    }
    for (const ProfileSnap& p : profile) {
        w.beginObject();
        w.field("kind", "profile");
        w.field("name", p.path);
        w.field("count", p.count);
        w.field("total_seconds", p.totalSeconds);
        w.field("self_seconds", p.selfSeconds);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

// ------------------------------------------------------------ fromJson ---

MetricsSnapshot
MetricsSnapshot::fromJson(const std::string& text)
{
    JsonCursor c(text, "MetricsSnapshot::fromJson");
    MetricsSnapshot s;
    bool sawSchema = false, sawSamples = false;

    c.expect('{');
    forEachKey(c, [&](const std::string& key) {
        if (key == "schema") {
            if (c.parseInt() != kTelemetrySchemaVersion)
                c.fail("unsupported schema version");
            sawSchema = true;
        } else if (key == "bench") {
            if (c.parseString() != "metrics_snapshot")
                c.fail("not a metrics_snapshot artifact");
        } else if (key == "config") {
            c.expect('{');
            forEachKey(c, [&](const std::string& k) {
                if (k == "source")
                    s.source = c.parseString();
                else if (k == "level")
                    s.level = metricsLevelFromName(c.parseString());
                else
                    c.fail("unknown config key '" + k + "'");
            });
        } else if (key == "metrics") {
            // Redundant size echoes for CI tooling; validated against
            // the samples below only loosely (parse + discard).
            c.expect('{');
            forEachKey(c, [&](const std::string& k) {
                if (k == "spans_dropped")
                    s.spansDropped = c.parseInt();
                else
                    c.parseInt();
            });
        } else if (key == "samples") {
            sawSamples = true;
            c.expect('[');
            if (!c.tryConsume(']')) {
                do {
                    c.expect('{');
                    std::string kind, name;
                    CounterSnap cs;
                    GaugeSnap gs;
                    HistogramSnap hs;
                    TraceEvent ev;
                    ProfileSnap ps;
                    forEachKey(c, [&](const std::string& k) {
                        if (k == "kind")
                            kind = c.parseString();
                        else if (k == "name")
                            name = c.parseString();
                        else if (k == "value" && kind == "counter")
                            cs.value = c.parseInt();
                        else if (k == "value")
                            gs.value = c.parseNumber();
                        else if (k == "count" && kind == "profile")
                            ps.count = c.parseInt();
                        else if (k == "count")
                            hs.count = c.parseInt();
                        else if (k == "total_seconds")
                            ps.totalSeconds = c.parseNumber();
                        else if (k == "self_seconds")
                            ps.selfSeconds = c.parseNumber();
                        else if (k == "sum")
                            hs.sum = c.parseNumber();
                        else if (k == "min")
                            hs.min = c.parseNumber();
                        else if (k == "max")
                            hs.max = c.parseNumber();
                        else if (k == "p50" || k == "p90" || k == "p99")
                            c.parseNumber();  // derived; recomputed
                        else if (k == "buckets") {
                            c.expect('[');
                            if (!c.tryConsume(']')) {
                                do {
                                    c.expect('[');
                                    int64_t index = c.parseInt();
                                    c.expect(',');
                                    int64_t count = c.parseInt();
                                    c.expect(']');
                                    hs.buckets.emplace_back(
                                        static_cast<int32_t>(index),
                                        static_cast<uint64_t>(count));
                                } while (c.tryConsume(','));
                                c.expect(']');
                            }
                        } else if (k == "thread")
                            ev.thread = static_cast<int>(c.parseInt());
                        else if (k == "start_seconds")
                            ev.startSeconds = c.parseNumber();
                        else if (k == "dur_seconds")
                            ev.durSeconds = c.parseNumber();
                        else if (k == "i")
                            ev.i = c.parseInt();
                        else if (k == "a")
                            ev.a = c.parseNumber();
                        else if (k == "b")
                            ev.b = c.parseNumber();
                        else
                            c.fail("unknown sample key '" + k + "'");
                    });
                    if (kind == "counter") {
                        cs.name = name;
                        s.counters.push_back(std::move(cs));
                    } else if (kind == "gauge") {
                        gs.name = name;
                        s.gauges.push_back(std::move(gs));
                    } else if (kind == "histogram") {
                        hs.name = name;
                        s.histograms.push_back(std::move(hs));
                    } else if (kind == "span") {
                        ev.name = name;
                        s.spans.push_back(std::move(ev));
                    } else if (kind == "profile") {
                        ps.path = name;
                        s.profile.push_back(std::move(ps));
                    } else {
                        c.fail("unknown sample kind '" + kind + "'");
                    }
                } while (c.tryConsume(','));
                c.expect(']');
            }
        } else {
            c.fail("unknown top-level key '" + key + "'");
        }
    });
    if (!c.atEnd())
        c.fail("trailing content");
    if (!sawSchema || !sawSamples)
        c.fail("missing schema/samples");
    return s;
}

// ------------------------------------------------------ SnapshotWriter ---

MetricsSnapshot
SnapshotWriter::capture(const std::string& source, MetricsRegistry& reg,
                        Tracer* tracer)
{
    MetricsSnapshot s;
    s.source = source;
    s.level = metricsLevel();
    reg.visit(
        [&](const std::string& name, const Counter& c) {
            s.counters.push_back({name, c.value()});
        },
        [&](const std::string& name, const Gauge& g) {
            s.gauges.push_back({name, g.value()});
        },
        [&](const std::string& name, const Histogram& h) {
            HistogramSnap snap;
            snap.name = name;
            snap.count = h.count();
            snap.sum = h.sum();
            snap.min = h.min();
            snap.max = h.max();
            snap.buckets = h.buckets();
            s.histograms.push_back(std::move(snap));
        });
    if (tracer && (s.level == MetricsLevel::Trace ||
                   s.level == MetricsLevel::Profile))
        s.spans = tracer->drain(&s.spansDropped);
    if (s.level == MetricsLevel::Profile) {
        for (const ProfileRow& row : Profiler::global().rows())
            s.profile.push_back(
                {row.path, row.count, row.totalSeconds, row.selfSeconds});
    }
    return s;
}

MetricsSnapshot
SnapshotWriter::captureGlobal(const std::string& source)
{
    return capture(source, MetricsRegistry::global(), &Tracer::global());
}

bool
SnapshotWriter::write(const MetricsSnapshot& snap, const std::string& path)
{
    std::string text = snap.toJson();
    {
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write metrics snapshot '%s'\n",
                         path.c_str());
            return false;
        }
        out << text << '\n';
    }
    std::ifstream in(path);
    std::string back((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    while (!back.empty() && back.back() == '\n')
        back.pop_back();
    try {
        if (!(MetricsSnapshot::fromJson(back) == snap)) {
            std::fprintf(stderr,
                         "metrics snapshot round-trip mismatch: %s\n",
                         path.c_str());
            return false;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "metrics snapshot re-parse failed: %s\n",
                     e.what());
        return false;
    }
    return true;
}

void
SnapshotWriter::beginBenchConfig(JsonWriter& w, const std::string& bench,
                                 bool full, uint64_t seed,
                                 const std::string& task,
                                 const std::string& setting,
                                 double systemBwGbps, int groupSize)
{
    w.beginTelemetry(bench);
    w.beginObject("config");
    w.field("full", full);
    w.field("seed", seed);
    w.field("task", task);
    w.field("setting", setting);
    w.field("system_bw_gbps", systemBwGbps);
    w.field("group_size", groupSize);
    // Caller appends its bench-specific config fields, then endObject().
}

}  // namespace magma::obs
