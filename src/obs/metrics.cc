#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace magma::obs {

// ------------------------------------------------------------- level ---

std::string
metricsLevelName(MetricsLevel level)
{
    switch (level) {
    case MetricsLevel::Off:
        return "off";
    case MetricsLevel::Counters:
        return "counters";
    case MetricsLevel::Trace:
        return "trace";
    case MetricsLevel::Profile:
        return "profile";
    case MetricsLevel::Inherit:
        return "inherit";
    }
    return "counters";
}

MetricsLevel
metricsLevelFromName(const std::string& name)
{
    if (name == "off")
        return MetricsLevel::Off;
    if (name == "counters")
        return MetricsLevel::Counters;
    if (name == "trace")
        return MetricsLevel::Trace;
    if (name == "profile")
        return MetricsLevel::Profile;
    throw std::invalid_argument("unknown metrics level '" + name +
                                "' (expected off|counters|trace|profile)");
}

namespace {

std::atomic<int>&
levelCell()
{
    // -1 = not yet initialized from the environment.
    static std::atomic<int> cell{-1};
    return cell;
}

int
levelFromEnv()
{
    // getenv is safe here: called once from metricsLevel()'s static
    // initializer, and nothing in this process calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("MAGMA_METRICS")) {
        try {
            return static_cast<int>(metricsLevelFromName(env));
        } catch (const std::invalid_argument&) {
            // An unparsable value must not abort the host process;
            // fall through to the default.
        }
    }
    return static_cast<int>(MetricsLevel::Counters);
}

}  // namespace

MetricsLevel
metricsLevel()
{
    // Memory order: relaxed is sufficient — the cell carries a small
    // enum with no dependent data behind it, and racing first calls
    // all compute the same value from the environment (either store
    // wins, idempotently). setMetricsLevel() from tests runs while no
    // search threads are live.
    int v = levelCell().load(std::memory_order_relaxed);
    if (v < 0) {
        v = levelFromEnv();
        levelCell().store(v, std::memory_order_relaxed);
    }
    return static_cast<MetricsLevel>(v);
}

void
setMetricsLevel(MetricsLevel level)
{
    levelCell().store(static_cast<int>(effectiveLevel(level)),
                      std::memory_order_relaxed);
}

// --------------------------------------------------------- Histogram ---

Histogram::Histogram()
{
    for (auto& b : buckets_)
        b.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

int
Histogram::bucketIndex(double v)
{
    if (!(v > 0.0) || !std::isfinite(v))
        return 0;
    int exp = 0;
    double frac = std::frexp(v, &exp);  // frac in [0.5, 1)
    if (exp < kMinExp)
        return 1;  // tiny positives saturate into the bottom bucket
    if (exp >= kMaxExp)
        return kNumBuckets - 1;  // huge values saturate into the top
    int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double
Histogram::bucketValue(int index)
{
    if (index <= 0)
        return 0.0;
    int linear = index - 1;
    int exp = kMinExp + linear / kSubBuckets;
    int sub = linear % kSubBuckets;
    // Midpoint of the sub-bucket's fraction range within [0.5, 1).
    double frac =
        0.5 + (static_cast<double>(sub) + 0.5) / (2.0 * kSubBuckets);
    return std::ldexp(frac, exp);
}

void
Histogram::record(double v)
{
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    double cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

double
Histogram::min() const
{
    double v = min_.load(std::memory_order_relaxed);
    return std::isfinite(v) ? v : 0.0;
}

double
Histogram::max() const
{
    double v = max_.load(std::memory_order_relaxed);
    return std::isfinite(v) ? v : 0.0;
}

double
Histogram::mean() const
{
    int64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

HistogramBuckets
Histogram::buckets() const
{
    HistogramBuckets out;
    for (int i = 0; i < kNumBuckets; ++i) {
        uint64_t c = buckets_[i].load(std::memory_order_relaxed);
        if (c != 0)
            out.emplace_back(i, c);
    }
    return out;
}

double
Histogram::quantileOf(const HistogramBuckets& buckets, int64_t count,
                      double min, double max, double q)
{
    if (count <= 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample, 1-based: ceil(q * count), at least 1.
    int64_t rank = static_cast<int64_t>(
        std::ceil(q * static_cast<double>(count)));
    rank = std::clamp<int64_t>(rank, 1, count);
    // The extreme ranks answer with the EXACT tracked extremes — this is
    // what makes the single-sample edge case precise instead of
    // bucket-blurred.
    if (rank >= count)
        return max;
    if (rank == 1)
        return min;
    int64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += static_cast<int64_t>(buckets[i].second);
        if (seen < rank)
            continue;
        // The underflow bucket has no representative value (it counts
        // non-positives), and ranks inside the topmost occupied bucket
        // cannot exceed the exact max — answer exactly at both ends so
        // a saturated top bucket never fabricates a value.
        if (buckets[i].first == 0)
            return min;
        if (i + 1 == buckets.size())
            return max;
        return bucketValue(buckets[i].first);
    }
    return max;
}

double
Histogram::quantile(double q) const
{
    return quantileOf(buckets(), count(), min(), max(), q);
}

void
Histogram::merge(const Histogram& other)
{
    for (int i = 0; i < kNumBuckets; ++i) {
        uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
        if (c != 0)
            buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    if (other.count() > 0) {
        double omin = other.min_.load(std::memory_order_relaxed);
        double cur = min_.load(std::memory_order_relaxed);
        while (omin < cur && !min_.compare_exchange_weak(
                                 cur, omin, std::memory_order_relaxed)) {
        }
        double omax = other.max_.load(std::memory_order_relaxed);
        cur = max_.load(std::memory_order_relaxed);
        while (omax > cur && !max_.compare_exchange_weak(
                                 cur, omax, std::memory_order_relaxed)) {
        }
    }
}

void
Histogram::reset()
{
    for (auto& b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

// --------------------------------------------------- MetricsRegistry ---

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

const Counter*
MetricsRegistry::findCounter(const std::string& name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge*
MetricsRegistry::findGauge(const std::string& name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram*
MetricsRegistry::findHistogram(const std::string& name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

void
MetricsRegistry::addGaugeProvider(std::function<void(MetricsRegistry&)> fn)
{
    std::lock_guard<std::mutex> lk(mu_);
    providers_.push_back(std::move(fn));
}

void
MetricsRegistry::visit(
    const std::function<void(const std::string&, const Counter&)>& c,
    const std::function<void(const std::string&, const Gauge&)>& g,
    const std::function<void(const std::string&, const Histogram&)>& h)
{
    // Providers register/update gauges, which needs the mutex — run them
    // on a copied list first, then read under the lock.
    std::vector<std::function<void(MetricsRegistry&)>> providers;
    {
        std::lock_guard<std::mutex> lk(mu_);
        providers = providers_;
    }
    for (auto& p : providers)
        p(*this);

    std::lock_guard<std::mutex> lk(mu_);
    if (c)
        for (const auto& [name, m] : counters_)
            c(name, *m);
    if (g)
        for (const auto& [name, m] : gauges_)
            g(name, *m);
    if (h)
        for (const auto& [name, m] : histograms_)
            h(name, *m);
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [name, m] : counters_)
        m->reset();
    for (auto& [name, m] : gauges_)
        m->reset();
    for (auto& [name, m] : histograms_)
        m->reset();
}

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry* reg = new MetricsRegistry();  // never dtor'd
    return *reg;
}

}  // namespace magma::obs
