#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace magma::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

double
Tracer::nowSeconds() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

Tracer::Ring&
Tracer::myRing()
{
    // One ring per (tracer, thread); the shared_ptr keeps a ring
    // drainable after its thread exits.
    thread_local std::shared_ptr<Ring> ring;
    thread_local Tracer* owner = nullptr;
    if (!ring || owner != this) {
        auto r = std::make_shared<Ring>();
        r->events.reserve(kRingCapacity);
        {
            std::lock_guard<std::mutex> lk(mu_);
            r->thread = next_thread_id_++;
            rings_.push_back(r);
        }
        ring = std::move(r);
        owner = this;
    }
    return *ring;
}

void
Tracer::record(TraceEvent e)
{
    Ring& r = myRing();
    e.thread = r.thread;
    std::lock_guard<std::mutex> lk(r.mu);
    if (r.events.size() < kRingCapacity) {
        r.events.push_back(std::move(e));
        r.next = r.events.size() % kRingCapacity;
    } else {
        r.events[r.next] = std::move(e);
        r.next = (r.next + 1) % kRingCapacity;
        r.wrapped = true;
        ++r.droppedSinceDrain;
    }
}

std::vector<TraceEvent>
Tracer::drain(int64_t* dropped)
{
    std::vector<std::shared_ptr<Ring>> rings;
    {
        std::lock_guard<std::mutex> lk(mu_);
        rings = rings_;
    }
    std::vector<TraceEvent> out;
    int64_t lost = 0;
    for (auto& r : rings) {
        std::lock_guard<std::mutex> lk(r->mu);
        if (r->wrapped) {
            // Oldest-first: the slot at `next` is the oldest survivor.
            out.insert(out.end(),
                       std::make_move_iterator(r->events.begin() +
                                               static_cast<long>(r->next)),
                       std::make_move_iterator(r->events.end()));
            out.insert(out.end(),
                       std::make_move_iterator(r->events.begin()),
                       std::make_move_iterator(r->events.begin() +
                                               static_cast<long>(r->next)));
        } else {
            out.insert(out.end(),
                       std::make_move_iterator(r->events.begin()),
                       std::make_move_iterator(r->events.end()));
        }
        lost += r->droppedSinceDrain;
        r->events.clear();
        r->next = 0;
        r->wrapped = false;
        r->droppedSinceDrain = 0;
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.startSeconds < b.startSeconds;
                     });
    if (dropped)
        *dropped = lost;
    return out;
}

Tracer&
Tracer::global()
{
    static Tracer* t = new Tracer();  // never destroyed: worker threads
                                      // may record during static teardown
    return *t;
}

}  // namespace magma::obs
