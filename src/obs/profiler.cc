#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace magma::obs {

double
Profiler::clockSeconds()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
}

Profiler::ThreadState&
Profiler::threadState()
{
    // One state per (profiler, thread); the shared_ptr keeps a tree
    // mergeable after its thread exits (the Tracer ring pattern).
    thread_local std::shared_ptr<ThreadState> state;
    thread_local Profiler* owner = nullptr;
    if (!state || owner != this) {
        auto st = std::make_shared<ThreadState>();
        st->stack.push_back(&st->root);
        {
            std::lock_guard<std::mutex> lk(mu_);
            states_.push_back(st);
        }
        state = std::move(st);
        owner = this;
    }
    return *state;
}

void
Profiler::enter(ThreadState& st, const char* name)
{
    std::lock_guard<std::mutex> lk(st.mu);
    Node* cur = st.stack.back();
    std::unique_ptr<Node>& slot = cur->children[name];
    if (!slot)
        slot = std::make_unique<Node>();
    st.stack.push_back(slot.get());
}

void
Profiler::exit(ThreadState& st, double elapsedSeconds)
{
    std::lock_guard<std::mutex> lk(st.mu);
    Node* cur = st.stack.back();
    cur->count += 1;
    cur->totalSeconds += elapsedSeconds;
    st.stack.pop_back();
    st.stack.back()->childSeconds += elapsedSeconds;
}

std::vector<ProfileRow>
Profiler::rows() const
{
    // Merged mirror of Node, accumulated across threads by path.
    struct Merged {
        int64_t count = 0;
        double total = 0.0;
        double child = 0.0;
        std::map<std::string, Merged> children;
    };
    Merged root;

    std::vector<std::shared_ptr<ThreadState>> states;
    {
        std::lock_guard<std::mutex> lk(mu_);
        states = states_;
    }
    auto merge = [](auto&& self, Merged& dst, const Node& src) -> void {
        dst.count += src.count;
        dst.total += src.totalSeconds;
        dst.child += src.childSeconds;
        for (const auto& [name, sub] : src.children)
            self(self, dst.children[name], *sub);
    };
    for (const auto& st : states) {
        std::lock_guard<std::mutex> lk(st->mu);
        merge(merge, root, st->root);
    }

    std::vector<ProfileRow> out;
    auto flatten = [&out](auto&& self, const Merged& n,
                          const std::string& prefix) -> void {
        for (const auto& [name, sub] : n.children) {
            std::string path =
                prefix.empty() ? name : prefix + "/" + name;
            ProfileRow row;
            row.path = path;
            row.count = sub.count;
            row.totalSeconds = sub.total;
            row.selfSeconds = std::max(0.0, sub.total - sub.child);
            out.push_back(std::move(row));
            self(self, sub, path);
        }
    };
    flatten(flatten, root, std::string());
    return out;
}

std::string
Profiler::reportText() const
{
    std::string out;
    char line[160];
    for (const ProfileRow& row : rows()) {
        size_t depth = static_cast<size_t>(
            std::count(row.path.begin(), row.path.end(), '/'));
        size_t slash = row.path.rfind('/');
        std::string name = slash == std::string::npos
                               ? row.path
                               : row.path.substr(slash + 1);
        out.append(2 * depth, ' ');
        std::snprintf(line, sizeof line,
                      "%s  count=%lld  total=%.6fs  self=%.6fs\n",
                      name.c_str(), static_cast<long long>(row.count),
                      row.totalSeconds, row.selfSeconds);
        out += line;
    }
    return out;
}

void
Profiler::reset()
{
    std::vector<std::shared_ptr<ThreadState>> states;
    {
        std::lock_guard<std::mutex> lk(mu_);
        states = states_;
    }
    for (const auto& st : states) {
        std::lock_guard<std::mutex> lk(st->mu);
        // A thread with open frames holds raw pointers into its tree;
        // clearing under it would dangle them, so only quiescent
        // threads (stack == root) are reset. Tests reset between
        // phases when no scopes are live, so this covers them all.
        if (st->stack.size() != 1)
            continue;
        st->root.children.clear();
        st->root.count = 0;
        st->root.totalSeconds = 0.0;
        st->root.childSeconds = 0.0;
    }
}

Profiler&
Profiler::global()
{
    static Profiler* p = new Profiler();  // never destroyed: worker
                                          // threads may profile during
                                          // static teardown
    return *p;
}

}  // namespace magma::obs
