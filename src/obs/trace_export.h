#ifndef MAGMA_OBS_TRACE_EXPORT_H_
#define MAGMA_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/snapshot.h"
#include "obs/trace.h"

namespace magma::obs {

/**
 * One Chrome trace-event: a complete slice (ph "X") for a span with
 * duration, an instant (ph "i") for a zero-duration event. Times are
 * kept in the exported unit — microseconds since the Tracer epoch — so
 * the JSON round-trip compares bitwise without a lossy seconds<->micros
 * conversion on the parse side.
 */
struct ChromeEvent {
    std::string name;
    bool instant = false;
    double tsMicros = 0.0;
    double durMicros = 0.0;  // complete events only
    int tid = 0;
    int64_t i = 0;  // span payload: the three per-site slots (see
    double a = 0.0;  // obs/trace.h) exported as args.i/args.a/args.b
    double b = 0.0;

    bool operator==(const ChromeEvent& o) const;
};

/**
 * A drained trace as a Chrome trace-event / Perfetto artifact (load the
 * written file in ui.perfetto.dev or chrome://tracing). Like every
 * artifact in the codebase it round-trips exactly:
 * fromJson(toJson(t)) == t under the %.17g discipline.
 *
 * JSON shape (the trace-event "object format"):
 *   { "traceEvents": [
 *       {"name":..., "ph":"X", "ts":..., "dur":..., "pid":1, "tid":...,
 *        "args":{"i":...,"a":...,"b":...}},
 *       {"name":..., "ph":"i", "ts":..., "s":"t", "pid":1, "tid":...,
 *        "args":{...}} ],
 *     "displayTimeUnit": "ms",
 *     "otherData": {"source":..., "dropped_events":...} }
 * pid is always 1 (one process); tid is the Tracer's per-thread id; the
 * ring-wrap loss count rides in otherData so a truncated trace is
 * visibly truncated.
 */
struct ChromeTrace {
    std::string source;
    int64_t droppedEvents = 0;
    std::vector<ChromeEvent> events;

    /** Convert drained Tracer events (seconds -> microseconds once). */
    static ChromeTrace fromEvents(const std::vector<TraceEvent>& events,
                                  const std::string& source,
                                  int64_t dropped);

    /** fromEvents over a snapshot's spans/source/dropped count. */
    static ChromeTrace fromSnapshot(const MetricsSnapshot& snap);

    std::string toJson() const;
    /** Exact inverse of toJson(); throws std::invalid_argument. */
    static ChromeTrace fromJson(const std::string& text);

    bool operator==(const ChromeTrace& o) const;
};

/**
 * Writes a ChromeTrace to disk and — the SnapshotWriter discipline —
 * re-reads and re-parses the written text, verifying it equals the
 * in-memory value. The self-check is what "loads in Perfetto" rests
 * on: the file provably is the JSON we think it is.
 */
class TraceExporter {
  public:
    static bool write(const ChromeTrace& trace, const std::string& path);
};

}  // namespace magma::obs

#endif  // MAGMA_OBS_TRACE_EXPORT_H_
