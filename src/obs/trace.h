#ifndef MAGMA_OBS_TRACE_H_
#define MAGMA_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace magma::obs {

/**
 * One completed span (or instant event, durSeconds == 0): what ran,
 * when (seconds since the Tracer epoch), for how long, on which thread,
 * plus three payload slots whose meaning is per-site:
 *   opt.generation   i = generation index, a = best-so-far fitness,
 *                    b = samples used so far
 *   mo.generation    i = generation index, a = archive front size,
 *                    b = front hypervolume (origin ref; NaN when the
 *                        front is too large to slice cheaply)
 *   exec.eval.batch  i = batch size
 *   exec.eval.sim_batch  i = batch size
 *   sched.flat.compile  i = jobs * accels table cells
 *   serve.request    i = serve order, a = queue-wait seconds,
 *                    b = search seconds
 *   dyn.remap        i = event index, a = best fitness,
 *                    b = samples used
 * Every construction site carries a "span payload:" comment naming its
 * slots — magma_lint --check-spans enforces the convention.
 */
struct TraceEvent {
    std::string name;
    double startSeconds = 0.0;
    double durSeconds = 0.0;
    int thread = 0;
    int64_t i = 0;
    double a = 0.0;
    double b = 0.0;
};

/**
 * Process-wide span collector: each thread owns a fixed-capacity ring
 * buffer (oldest events overwritten, overwrites counted), so tracing
 * never allocates unboundedly and never blocks one thread on another —
 * the only cross-thread contention is drain() against a ring's own
 * mutex. Recording is gated on obs::traceOn(); at lower levels spans
 * cost one branch.
 */
class Tracer {
  public:
    /** Events kept per thread before the ring wraps. */
    static constexpr size_t kRingCapacity = 8192;

    Tracer();

    /** Record a completed span on the calling thread's ring. */
    void record(TraceEvent e);

    /**
     * Move out every ring's events, oldest first per thread, merged in
     * start-time order; clears the rings. `dropped`, when non-null,
     * receives the number of events lost to ring wraps since the last
     * drain.
     */
    std::vector<TraceEvent> drain(int64_t* dropped = nullptr);

    /** Seconds since this tracer's construction (the span clock). */
    double nowSeconds() const;

    static Tracer& global();

  private:
    struct Ring {
        std::mutex mu;
        std::vector<TraceEvent> events;  // capacity kRingCapacity
        size_t next = 0;                 // insertion cursor
        bool wrapped = false;
        int64_t droppedSinceDrain = 0;
        int thread = 0;
    };

    Ring& myRing();

    std::mutex mu_;  // guards rings_ registration
    std::vector<std::shared_ptr<Ring>> rings_;
    int next_thread_id_ = 0;
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * RAII span: stamps the start on construction, records into
 * Tracer::global() on destruction. When tracing is off at construction
 * the whole object is a no-op (no clock read). Payload slots can be
 * filled between the braces:
 *
 *   {
 *       obs::Span span("exec.eval.batch", count);
 *       ... work ...
 *   }
 */
class Span {
  public:
    explicit Span(const char* name, int64_t i = 0)
        : name_(name), i_(i), on_(traceOn())
    {
        if (on_)
            t0_ = Tracer::global().nowSeconds();
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /** Fill the payload slots (kept when tracing is on). */
    void payload(double a, double b = 0.0)
    {
        a_ = a;
        b_ = b;
    }
    void setIndex(int64_t i) { i_ = i; }

    ~Span()
    {
        if (!on_)
            return;
        Tracer& t = Tracer::global();
        TraceEvent e;
        e.name = name_;
        e.startSeconds = t0_;
        e.durSeconds = t.nowSeconds() - t0_;
        e.i = i_;
        e.a = a_;
        e.b = b_;
        t.record(std::move(e));
    }

  private:
    const char* name_;
    double t0_ = 0.0;
    int64_t i_;
    double a_ = 0.0;
    double b_ = 0.0;
    bool on_;
};

/** Record an instant (zero-duration) event when tracing is on. */
inline void
traceInstant(const char* name, int64_t i, double a = 0.0, double b = 0.0)
{
    if (!traceOn())
        return;
    Tracer& t = Tracer::global();
    TraceEvent e;
    e.name = name;
    e.startSeconds = t.nowSeconds();
    e.i = i;
    e.a = a;
    e.b = b;
    t.record(std::move(e));
}

}  // namespace magma::obs

#endif  // MAGMA_OBS_TRACE_H_
