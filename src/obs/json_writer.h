#ifndef MAGMA_OBS_JSON_WRITER_H_
#define MAGMA_OBS_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace magma::obs {

/**
 * Version of the shared telemetry schema emitted as the "schema" field
 * by beginTelemetry(), so CI tooling consuming the perf-smoke artifacts
 * and metrics snapshots can detect layout changes instead of
 * mis-parsing them. Bump when the top-level shape
 * ({bench, config, metrics, samples}) changes.
 */
inline constexpr int kTelemetrySchemaVersion = 1;

/**
 * Minimal JSON emitter for the shared telemetry schema
 *   { "schema": 1, "bench": ..., "config": {...}, "metrics": {...},
 *     "samples": [...] }
 * so every bench harness's --json output and every obs::SnapshotWriter
 * metrics snapshot is consumed by the same CI tooling. Promoted from
 * bench/bench_common.h so src/ can emit telemetry too; bench harnesses
 * use obs::JsonWriter directly. Purely append-only: call the key/value
 * helpers between
 * begin/end pairs; commas are managed automatically. Strings are escaped
 * (quotes, backslashes, control characters) and non-finite doubles are
 * emitted as null, so the output is always valid JSON regardless of
 * payload.
 */
class JsonWriter {
  public:
    JsonWriter() { out_.reserve(1024); }

    /** Open the telemetry root: '{' + schema/bench fields. */
    void beginTelemetry(const std::string& bench)
    {
        beginObject();
        field("schema", kTelemetrySchemaVersion);
        field("bench", bench);
    }

    void beginObject()
    {
        comma();
        out_ += '{';
        first_ = true;
    }
    void endObject()
    {
        out_ += '}';
        first_ = false;
    }
    void beginArray(const std::string& k)
    {
        key(k);
        out_ += '[';
        first_ = true;
    }
    void beginArray()
    {
        comma();
        out_ += '[';
        first_ = true;
    }
    void endArray()
    {
        out_ += ']';
        first_ = false;
    }
    void beginObject(const std::string& k)
    {
        key(k);
        out_ += '{';
        first_ = true;
    }

    void field(const std::string& k, const std::string& v)
    {
        key(k);
        appendString(v);
    }
    void field(const std::string& k, const char* v)
    {
        field(k, std::string(v));
    }
    void field(const std::string& k, double v)
    {
        key(k);
        appendDouble(v);
    }
    void field(const std::string& k, int64_t v)
    {
        key(k);
        out_ += std::to_string(v);
    }
    void field(const std::string& k, int v)
    {
        field(k, static_cast<int64_t>(v));
    }
    void field(const std::string& k, uint64_t v)
    {
        key(k);
        out_ += std::to_string(v);
    }
    void field(const std::string& k, bool v)
    {
        key(k);
        out_ += v ? "true" : "false";
    }

    /**
     * Key + pre-serialized JSON value emitted verbatim — how
     * bench_report echoes config objects it does not interpret. The
     * caller guarantees `json` is a complete, valid value.
     */
    void raw(const std::string& k, const std::string& json)
    {
        key(k);
        out_ += json;
    }

    /** Bare array element (between beginArray()/endArray()). */
    void element(int64_t v)
    {
        comma();
        out_ += std::to_string(v);
    }
    void element(uint64_t v)
    {
        comma();
        out_ += std::to_string(v);
    }
    void element(double v)
    {
        comma();
        appendDouble(v);
    }

    const std::string& str() const { return out_; }

    /** Write to `path`; returns false (with a stderr note) on failure. */
    bool writeFile(const std::string& path) const
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write JSON '%s'\n", path.c_str());
            return false;
        }
        std::fwrite(out_.data(), 1, out_.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        return true;
    }

  private:
    void comma()
    {
        if (!first_ && !out_.empty() && out_.back() != '{' &&
            out_.back() != '[')
            out_ += ',';
        first_ = false;
    }
    void key(const std::string& k)
    {
        comma();
        appendString(k);
        out_ += ':';
    }
    void appendDouble(double v)
    {
        if (!std::isfinite(v)) {
            // JSON has no inf/nan literals; "%.17g" would emit them and
            // corrupt the artifact.
            out_ += "null";
            return;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out_ += buf;
    }
    void appendString(const std::string& s)
    {
        out_ += '"';
        for (char c : s) {
            switch (c) {
            case '"':
                out_ += "\\\"";
                break;
            case '\\':
                out_ += "\\\\";
                break;
            case '\n':
                out_ += "\\n";
                break;
            case '\t':
                out_ += "\\t";
                break;
            case '\r':
                out_ += "\\r";
                break;
            case '\b':
                out_ += "\\b";
                break;
            case '\f':
                out_ += "\\f";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ += buf;
                } else {
                    out_ += c;
                }
            }
        }
        out_ += '"';
    }

    std::string out_;
    bool first_ = true;
};

}  // namespace magma::obs

#endif  // MAGMA_OBS_JSON_WRITER_H_
