#include "obs/trace_export.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/json_cursor.h"
#include "obs/json_writer.h"

namespace magma::obs {

bool
ChromeEvent::operator==(const ChromeEvent& o) const
{
    return name == o.name && instant == o.instant &&
           numEq(tsMicros, o.tsMicros) && numEq(durMicros, o.durMicros) &&
           tid == o.tid && i == o.i && numEq(a, o.a) && numEq(b, o.b);
}

bool
ChromeTrace::operator==(const ChromeTrace& o) const
{
    return source == o.source && droppedEvents == o.droppedEvents &&
           events == o.events;
}

ChromeTrace
ChromeTrace::fromEvents(const std::vector<TraceEvent>& events,
                        const std::string& source, int64_t dropped)
{
    ChromeTrace t;
    t.source = source;
    t.droppedEvents = dropped;
    t.events.reserve(events.size());
    for (const TraceEvent& e : events) {
        ChromeEvent ce;
        ce.name = e.name;
        ce.instant = e.durSeconds == 0.0;
        // Seconds -> microseconds exactly once, here: the struct then
        // carries the exported unit, so write()'s reparse comparison
        // never re-crosses a lossy conversion.
        ce.tsMicros = e.startSeconds * 1e6;
        ce.durMicros = e.durSeconds * 1e6;
        ce.tid = e.thread;
        ce.i = e.i;
        ce.a = e.a;
        ce.b = e.b;
        t.events.push_back(std::move(ce));
    }
    return t;
}

ChromeTrace
ChromeTrace::fromSnapshot(const MetricsSnapshot& snap)
{
    return fromEvents(snap.spans, snap.source, snap.spansDropped);
}

std::string
ChromeTrace::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.beginArray("traceEvents");
    for (const ChromeEvent& e : events) {
        w.beginObject();
        w.field("name", e.name);
        w.field("ph", e.instant ? "i" : "X");
        w.field("ts", e.tsMicros);
        if (e.instant)
            w.field("s", "t");  // thread-scoped instant
        else
            w.field("dur", e.durMicros);
        w.field("pid", 1);
        w.field("tid", e.tid);
        w.beginObject("args");
        w.field("i", e.i);
        w.field("a", e.a);
        w.field("b", e.b);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.beginObject("otherData");
    w.field("source", source);
    w.field("dropped_events", droppedEvents);
    w.endObject();
    w.endObject();
    return w.str();
}

ChromeTrace
ChromeTrace::fromJson(const std::string& text)
{
    JsonCursor c(text, "ChromeTrace::fromJson");
    ChromeTrace t;
    bool sawEvents = false;

    c.expect('{');
    forEachKey(c, [&](const std::string& key) {
        if (key == "traceEvents") {
            sawEvents = true;
            c.expect('[');
            if (!c.tryConsume(']')) {
                do {
                    c.expect('{');
                    ChromeEvent e;
                    std::string ph;
                    bool sawScope = false;
                    forEachKey(c, [&](const std::string& k) {
                        if (k == "name")
                            e.name = c.parseString();
                        else if (k == "ph")
                            ph = c.parseString();
                        else if (k == "ts")
                            e.tsMicros = c.parseNumber();
                        else if (k == "dur")
                            e.durMicros = c.parseNumber();
                        else if (k == "s") {
                            if (c.parseString() != "t")
                                c.fail("unexpected instant scope");
                            sawScope = true;
                        } else if (k == "pid") {
                            if (c.parseInt() != 1)
                                c.fail("unexpected pid");
                        } else if (k == "tid")
                            e.tid = static_cast<int>(c.parseInt());
                        else if (k == "args") {
                            c.expect('{');
                            forEachKey(c, [&](const std::string& a) {
                                if (a == "i")
                                    e.i = c.parseInt();
                                else if (a == "a")
                                    e.a = c.parseNumber();
                                else if (a == "b")
                                    e.b = c.parseNumber();
                                else
                                    c.fail("unknown args key '" + a + "'");
                            });
                        } else
                            c.fail("unknown event key '" + k + "'");
                    });
                    if (ph == "i")
                        e.instant = true;
                    else if (ph != "X")
                        c.fail("unknown event ph '" + ph + "'");
                    if (e.instant != sawScope)
                        c.fail("instant scope/ph mismatch");
                    t.events.push_back(std::move(e));
                } while (c.tryConsume(','));
                c.expect(']');
            }
        } else if (key == "displayTimeUnit") {
            if (c.parseString() != "ms")
                c.fail("unexpected displayTimeUnit");
        } else if (key == "otherData") {
            c.expect('{');
            forEachKey(c, [&](const std::string& k) {
                if (k == "source")
                    t.source = c.parseString();
                else if (k == "dropped_events")
                    t.droppedEvents = c.parseInt();
                else
                    c.fail("unknown otherData key '" + k + "'");
            });
        } else {
            c.fail("unknown top-level key '" + key + "'");
        }
    });
    if (!c.atEnd())
        c.fail("trailing content");
    if (!sawEvents)
        c.fail("missing traceEvents");
    return t;
}

bool
TraceExporter::write(const ChromeTrace& trace, const std::string& path)
{
    std::string text = trace.toJson();
    {
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write trace '%s'\n", path.c_str());
            return false;
        }
        out << text << '\n';
    }
    std::ifstream in(path);
    std::string back((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    while (!back.empty() && back.back() == '\n')
        back.pop_back();
    try {
        if (!(ChromeTrace::fromJson(back) == trace)) {
            std::fprintf(stderr, "trace round-trip mismatch: %s\n",
                         path.c_str());
            return false;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "trace re-parse failed: %s\n", e.what());
        return false;
    }
    return true;
}

}  // namespace magma::obs
