#ifndef MAGMA_OBS_PROFILER_H_
#define MAGMA_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace magma::obs {

/**
 * One merged profile-tree node flattened to a row: `path` is the
 * '/'-joined chain of PROFILE_SCOPE names from the root ("opt.search/
 * opt.generation/exec.eval.batch"), `totalSeconds` is inclusive wall
 * time, `selfSeconds` is exclusive (total minus the time attributed to
 * child scopes). Rows come out in deterministic depth-first order with
 * name-sorted siblings, so two reports over the same call shapes list
 * the same paths in the same order.
 */
struct ProfileRow {
    std::string path;
    int64_t count = 0;
    double totalSeconds = 0.0;
    double selfSeconds = 0.0;
};

/**
 * Scoped hierarchical wall-clock profiler: PROFILE_SCOPE sites push a
 * frame on the calling thread's stack on entry and fold the elapsed
 * time into that thread's scope tree on exit. report() merges every
 * thread's tree (non-destructively) into one self/total/count tree.
 *
 * Off by default: scopes check obs::profileOn() once at construction
 * (MAGMA_METRICS=profile turns it on) and cost a single branch when
 * off. Like every obs layer, profiling only OBSERVES — search results
 * are bitwise identical whether it is on or off, which the off-vs-
 * profile parity test in tests/test_obs.cc asserts.
 *
 * Threading: each thread owns its state (registered the same way
 * Tracer's rings are, via thread_local shared_ptr so trees survive
 * thread exit); enter/exit lock only the owning thread's mutex, which
 * is uncontended except while a report() walk is in flight.
 */
class Profiler {
  public:
    Profiler() = default;
    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    /**
     * Merge every thread's tree and flatten: depth-first, siblings
     * name-sorted. Non-destructive (RunReport captures metrics before
     * --metrics-out does; both see the full profile).
     */
    std::vector<ProfileRow> rows() const;

    /**
     * Deterministic indented text tree of rows() (two spaces per
     * depth), one "name  count=N  total=Xs  self=Xs" line per node.
     * Values are wall-clock and vary run to run; the structure and
     * ordering do not.
     */
    std::string reportText() const;

    /** Drop every thread's tree (tests; between bench repetitions). */
    void reset();

    static Profiler& global();

    /** Seconds on the profiler clock (steady, arbitrary epoch). */
    static double clockSeconds();

  private:
    friend class ProfileScope;

    /** One scope-tree node; children keyed (and ordered) by name. */
    struct Node {
        int64_t count = 0;
        double totalSeconds = 0.0;
        double childSeconds = 0.0;
        std::map<std::string, std::unique_ptr<Node>> children;
    };

    /** Per-thread frame stack + tree root. */
    struct ThreadState {
        std::mutex mu;
        Node root;
        std::vector<Node*> stack;  // open frames; back() is current
    };

    ThreadState& threadState();

    static void enter(ThreadState& st, const char* name);
    static void exit(ThreadState& st, double elapsedSeconds);

    mutable std::mutex mu_;  // guards states_ registration
    std::vector<std::shared_ptr<ThreadState>> states_;
};

/**
 * RAII profiling frame: a no-op (one branch, no clock read) unless the
 * process level is Profile at construction. Use through PROFILE_SCOPE:
 *
 *   void FlatEvaluator::simulate(...) {
 *       PROFILE_SCOPE("sched.flat.simulate");
 *       ...
 *   }
 *
 * `name` must be a string literal (or otherwise outlive the scope).
 */
class ProfileScope {
  public:
    explicit ProfileScope(const char* name)
    {
        if (!profileOn())
            return;
        state_ = &Profiler::global().threadState();
        Profiler::enter(*state_, name);
        t0_ = Profiler::clockSeconds();
    }

    ProfileScope(const ProfileScope&) = delete;
    ProfileScope& operator=(const ProfileScope&) = delete;

    ~ProfileScope()
    {
        if (!state_)
            return;
        Profiler::exit(*state_, Profiler::clockSeconds() - t0_);
    }

  private:
    Profiler::ThreadState* state_ = nullptr;
    double t0_ = 0.0;
};

#define MAGMA_PROFILE_CONCAT2(a, b) a##b
#define MAGMA_PROFILE_CONCAT(a, b) MAGMA_PROFILE_CONCAT2(a, b)

/** Profile the enclosing scope under `name` (a string literal). */
#define PROFILE_SCOPE(name)                                       \
    ::magma::obs::ProfileScope MAGMA_PROFILE_CONCAT(              \
        magma_profile_scope_, __LINE__)(name)

}  // namespace magma::obs

#endif  // MAGMA_OBS_PROFILER_H_
