#ifndef MAGMA_OBS_JSON_CURSOR_H_
#define MAGMA_OBS_JSON_CURSOR_H_

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace magma::obs {

/**
 * Double equality for round-trip checks: bit-identical, except all NaNs
 * compare equal (non-finite values serialize as JSON null and parse
 * back as quiet NaN). Shared by MetricsSnapshot, ChromeTrace and
 * bench_report, so every artifact answers "did it round-trip?" the
 * same way.
 */
inline bool
numEq(double a, double b)
{
    if (std::isnan(a) && std::isnan(b))
        return true;
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/**
 * Minimal recursive-descent parser for the JSON subset JsonWriter emits
 * (objects, arrays, strings with escapes, %.17g numbers, bools, null).
 * Structure-driven: callers walk an exact expected shape through it and
 * fail() throws std::invalid_argument — with the caller-supplied prefix
 * and the byte offset — on anything else. The parsing half of the
 * telemetry round-trip discipline (JsonWriter is the emitting half).
 */
class JsonCursor {
  public:
    /** `prefix` labels errors, e.g. "MetricsSnapshot::fromJson". */
    JsonCursor(const std::string& text, std::string prefix)
        : s_(text), prefix_(std::move(prefix))
    {
    }

    void ws()
    {
        while (p_ < s_.size() &&
               (s_[p_] == ' ' || s_[p_] == '\t' || s_[p_] == '\n' ||
                s_[p_] == '\r'))
            ++p_;
    }

    bool tryConsume(char c)
    {
        ws();
        if (p_ < s_.size() && s_[p_] == c) {
            ++p_;
            return true;
        }
        return false;
    }

    void expect(char c)
    {
        if (!tryConsume(c))
            fail(std::string("expected '") + c + "'");
    }

    char peek()
    {
        ws();
        return p_ < s_.size() ? s_[p_] : '\0';
    }

    bool atEnd()
    {
        ws();
        return p_ >= s_.size();
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (p_ < s_.size() && s_[p_] != '"') {
            char c = s_[p_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p_ >= s_.size())
                fail("unterminated escape");
            char e = s_[p_++];
            switch (e) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            case 'r':
                out += '\r';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                if (p_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = s_[p_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // JsonWriter only emits \u00XX for control bytes; wider
                // code points would need UTF-8 encoding we never produce.
                if (code > 0xFF)
                    fail("unsupported \\u escape > 0xFF");
                out += static_cast<char>(code);
                break;
            }
            default:
                fail("unknown escape");
            }
        }
        expect('"');
        return out;
    }

    /** Number or null (null -> quiet NaN, JsonWriter's non-finite form). */
    double parseNumber()
    {
        ws();
        if (s_.compare(p_, 4, "null") == 0) {
            p_ += 4;
            return std::numeric_limits<double>::quiet_NaN();
        }
        const char* begin = s_.c_str() + p_;
        char* end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin)
            fail("expected number");
        p_ += static_cast<size_t>(end - begin);
        return v;
    }

    int64_t parseInt()
    {
        ws();
        const char* begin = s_.c_str() + p_;
        char* end = nullptr;
        long long v = std::strtoll(begin, &end, 10);
        if (end == begin)
            fail("expected integer");
        p_ += static_cast<size_t>(end - begin);
        return v;
    }

    bool parseBool()
    {
        ws();
        if (s_.compare(p_, 4, "true") == 0) {
            p_ += 4;
            return true;
        }
        if (s_.compare(p_, 5, "false") == 0) {
            p_ += 5;
            return false;
        }
        fail("expected bool");
        return false;
    }

    /**
     * Consume one arbitrary value (any JSON the writer can emit) and
     * return the raw text slice it occupied — how bench_report echoes a
     * config object it does not interpret.
     */
    std::string skipValue()
    {
        ws();
        size_t begin = p_;
        skipValueInner();
        return s_.substr(begin, p_ - begin);
    }

    /** Current byte offset (for error reporting by callers). */
    size_t offset() const { return p_; }

    [[noreturn]] void fail(const std::string& why)
    {
        throw std::invalid_argument(prefix_ + ": " + why + " at offset " +
                                    std::to_string(p_));
    }

  private:
    void skipValueInner()
    {
        char c = peek();
        if (c == '{') {
            expect('{');
            if (tryConsume('}'))
                return;
            do {
                parseString();
                expect(':');
                skipValueInner();
            } while (tryConsume(','));
            expect('}');
        } else if (c == '[') {
            expect('[');
            if (tryConsume(']'))
                return;
            do {
                skipValueInner();
            } while (tryConsume(','));
            expect(']');
        } else if (c == '"') {
            parseString();
        } else if (c == 't' || c == 'f') {
            parseBool();
        } else {
            parseNumber();
        }
    }

    const std::string& s_;
    std::string prefix_;
    size_t p_ = 0;
};

/**
 * Iterate "key": value pairs of the object whose '{' is already
 * consumed; fn(key) must consume the value. Consumes the closing '}'.
 */
template <typename Fn>
void
forEachKey(JsonCursor& c, Fn&& fn)
{
    if (c.tryConsume('}'))
        return;
    do {
        std::string key = c.parseString();
        c.expect(':');
        fn(key);
    } while (c.tryConsume(','));
    c.expect('}');
}

}  // namespace magma::obs

#endif  // MAGMA_OBS_JSON_CURSOR_H_
