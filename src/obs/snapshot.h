#ifndef MAGMA_OBS_SNAPSHOT_H_
#define MAGMA_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace magma::obs {

/** One counter at capture time. */
struct CounterSnap {
    std::string name;
    int64_t value = 0;

    bool operator==(const CounterSnap&) const = default;
};

/** One gauge at capture time. */
struct GaugeSnap {
    std::string name;
    double value = 0.0;

    bool operator==(const GaugeSnap& o) const;
};

/**
 * One histogram at capture time: the exact aggregate stats plus the
 * sparse occupied buckets, from which quantiles are re-derivable after
 * a round-trip (quantile() shares Histogram's walk, so a parsed
 * snapshot answers p50/p99 identically to the live histogram it came
 * from).
 */
struct HistogramSnap {
    std::string name;
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    HistogramBuckets buckets;

    double quantile(double q) const
    {
        return Histogram::quantileOf(buckets, count, min, max, q);
    }
    double mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }

    bool operator==(const HistogramSnap& o) const;
};

/**
 * One merged profiler node at capture time (a ProfileRow as artifact):
 * '/'-joined scope path, call count, inclusive and exclusive wall
 * seconds. Present only in Profile-level snapshots.
 */
struct ProfileSnap {
    std::string path;
    int64_t count = 0;
    double totalSeconds = 0.0;
    double selfSeconds = 0.0;

    bool operator==(const ProfileSnap& o) const;
};

/**
 * A whole registry (plus drained trace events) captured as a value —
 * the schema-1 JSON artifact behind `m3e_cli --metrics-out` and
 * `m3e_serve --metrics-out`. Like every other artifact in the codebase
 * it round-trips exactly: fromJson(toJson(s)) == s, with doubles under
 * the repo-wide %.17g discipline. (Non-finite doubles serialize as JSON
 * null and parse back as quiet NaN; equality treats all NaNs alike.)
 *
 * JSON shape (schema 1, the shared {schema, bench, config, metrics,
 * samples} telemetry layout):
 *   { "schema": 1, "bench": "metrics_snapshot",
 *     "config": {"source": ..., "level": ...},
 *     "metrics": {"counters": n, "gauges": n, "histograms": n,
 *                 "spans": n, "spans_dropped": n, "profile_nodes": n},
 *     "samples": [
 *       {"kind":"counter","name":...,"value":...},
 *       {"kind":"gauge","name":...,"value":...},
 *       {"kind":"histogram","name":...,"count":...,"sum":...,
 *        "min":...,"max":...,"p50":...,"p90":...,"p99":...,
 *        "buckets":[[index,count],...]},
 *       {"kind":"span","name":...,"thread":...,"start_seconds":...,
 *        "dur_seconds":...,"i":...,"a":...,"b":...},
 *       {"kind":"profile","name":...,"count":...,"total_seconds":...,
 *        "self_seconds":...} ] }
 * The p50/p90/p99 fields are derived conveniences for CI tooling; the
 * parser recomputes them from the buckets rather than trusting them.
 * (Parsers of schema-1 predating the "profile" kind reject Profile-
 * level snapshots loudly instead of misreading them — the size echo in
 * "metrics" is forward-tolerant, the samples are strict on purpose.)
 */
struct MetricsSnapshot {
    std::string source;  ///< producing binary ("m3e_cli", "m3e_serve")
    MetricsLevel level = MetricsLevel::Counters;
    std::vector<CounterSnap> counters;      // name-sorted
    std::vector<GaugeSnap> gauges;          // name-sorted
    std::vector<HistogramSnap> histograms;  // name-sorted
    std::vector<TraceEvent> spans;          // start-time order
    std::vector<ProfileSnap> profile;       // depth-first tree order
    int64_t spansDropped = 0;  ///< ring-wrap losses since last drain

    const CounterSnap* findCounter(const std::string& name) const;
    const GaugeSnap* findGauge(const std::string& name) const;
    const HistogramSnap* findHistogram(const std::string& name) const;

    std::string toJson() const;
    /** Exact inverse of toJson(); throws std::invalid_argument. */
    static MetricsSnapshot fromJson(const std::string& text);

    bool operator==(const MetricsSnapshot& o) const;
};

/**
 * Captures a MetricsRegistry (running its gauge providers first) plus —
 * at Trace level and above — the drained Tracer rings, plus — at
 * Profile level — the merged Profiler rows, into a MetricsSnapshot,
 * and writes it as schema-1 JSON. The single definition of the
 * snapshot artifact shared by `--metrics-out` in m3e_cli/m3e_serve,
 * the serve bench telemetry, and the CI metrics-smoke gate.
 */
class SnapshotWriter {
  public:
    /**
     * Snapshot `reg` under the current process level; drains `tracer`
     * when the level is Trace or Profile (pass null to skip trace
     * collection, e.g. for local registries that never traced). The
     * profiler read is non-destructive, so RunReport's capture and a
     * later --metrics-out both see the whole profile.
     */
    static MetricsSnapshot capture(const std::string& source,
                                   MetricsRegistry& reg,
                                   Tracer* tracer = nullptr);

    /** capture() of the global registry + global tracer. */
    static MetricsSnapshot captureGlobal(const std::string& source);

    /**
     * Write the snapshot to `path` and verify the written text parses
     * back equal (the repo's artifact discipline). Returns false with a
     * stderr note on I/O failure or round-trip mismatch.
     */
    static bool write(const MetricsSnapshot& snap, const std::string& path);

    /**
     * The shared bench config-echo: beginTelemetry(bench) plus the
     * config keys every harness repeats (full, seed, task, setting,
     * system_bw_gbps, group_size). Leaves the "config" object OPEN so
     * the harness appends its bench-specific fields, then calls
     * w.endObject() itself.
     */
    static void beginBenchConfig(JsonWriter& w, const std::string& bench,
                                 bool full, uint64_t seed,
                                 const std::string& task,
                                 const std::string& setting,
                                 double systemBwGbps, int groupSize);
};

}  // namespace magma::obs

#endif  // MAGMA_OBS_SNAPSHOT_H_
