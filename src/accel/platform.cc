#include "accel/platform.h"

#include <cassert>
#include <stdexcept>

namespace magma::accel {

std::string
settingName(Setting s)
{
    switch (s) {
    case Setting::S1: return "S1";
    case Setting::S2: return "S2";
    case Setting::S3: return "S3";
    case Setting::S4: return "S4";
    case Setting::S5: return "S5";
    case Setting::S6: return "S6";
    }
    return "?";
}

Setting
settingFromName(const std::string& name)
{
    for (Setting s : {Setting::S1, Setting::S2, Setting::S3, Setting::S4,
                      Setting::S5, Setting::S6})
        if (settingName(s) == name)
            return s;
    throw std::invalid_argument("unknown setting '" + name + "' (S1..S6)");
}

cost::SubAccelConfig
makeSubAccel(cost::DataflowStyle style, int rows, double sg_kib)
{
    cost::SubAccelConfig cfg;
    cfg.dataflow = style;
    cfg.rows = rows;
    cfg.cols = 64;
    cfg.sgBytes = sg_kib * 1024.0;
    cfg.slBytes = 1024.0;
    cfg.name = cost::dataflowName(style) + "-" + std::to_string(rows);
    return cfg;
}

Platform
makeSetting(Setting s, double system_bw_gbps)
{
    Platform p;
    p.name = settingName(s);
    p.systemBwGbps = system_bw_gbps;
    auto add = [&p](cost::DataflowStyle style, int rows, double sg_kib,
                    int count) {
        for (int i = 0; i < count; ++i)
            p.subAccels.push_back(makeSubAccel(style, rows, sg_kib));
    };
    using cost::DataflowStyle;
    switch (s) {
    case Setting::S1:
        p.description = "Small Homog";
        add(DataflowStyle::HB, 32, 146, 4);
        break;
    case Setting::S2:
        p.description = "Small Hetero";
        add(DataflowStyle::HB, 32, 146, 3);
        add(DataflowStyle::LB, 32, 110, 1);
        break;
    case Setting::S3:
        p.description = "Large Homog";
        add(DataflowStyle::HB, 128, 580, 8);
        break;
    case Setting::S4:
        p.description = "Large Hetero";
        add(DataflowStyle::HB, 128, 580, 7);
        add(DataflowStyle::LB, 128, 434, 1);
        break;
    case Setting::S5:
        p.description = "Large Hetero BigLittle";
        add(DataflowStyle::HB, 128, 580, 3);
        add(DataflowStyle::LB, 128, 434, 1);
        add(DataflowStyle::HB, 64, 291, 3);
        add(DataflowStyle::LB, 64, 218, 1);
        break;
    case Setting::S6:
        p.description = "Large Scale-up";
        add(DataflowStyle::HB, 128, 580, 7);
        add(DataflowStyle::LB, 128, 434, 1);
        add(DataflowStyle::HB, 64, 291, 7);
        add(DataflowStyle::LB, 64, 218, 1);
        break;
    }
    // Give every sub-accelerator a numbered instance name. Appended in
    // two steps: `+= "#" + std::to_string(i)` trips GCC 12's -Wrestrict
    // false positive (PR 105651) under -O2.
    for (size_t i = 0; i < p.subAccels.size(); ++i) {
        p.subAccels[i].name += '#';
        p.subAccels[i].name += std::to_string(i);
    }
    return p;
}

Platform
makeFlexibleSetting(Setting s, double system_bw_gbps)
{
    Platform p = makeSetting(s, system_bw_gbps);
    p.name += "-flex";
    p.description += " (flexible PE array)";
    for (auto& sub : p.subAccels) {
        sub.flexibleShape = true;
        sub.slBytes = 1024.0;            // 1KB per PE (Section VI-F)
        sub.sgBytes = 2.0 * 1024 * 1024; // 2MB SG (Section VI-F)
        sub.name = "flex-" + sub.name;
    }
    return p;
}

}  // namespace magma::accel
