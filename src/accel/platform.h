#ifndef MAGMA_ACCEL_PLATFORM_H_
#define MAGMA_ACCEL_PLATFORM_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"

namespace magma::accel {

/**
 * A multi-core accelerator: several sub-accelerators sharing one "system
 * BW" (the minimum of host-memory and host-to-accelerator bandwidth,
 * Section II-B1). The interconnect topology itself is abstracted away —
 * the scheduler is agnostic to it, exactly as in the paper.
 */
struct Platform {
    std::string name;
    std::string description;
    std::vector<cost::SubAccelConfig> subAccels;
    double systemBwGbps = 16.0;

    int numSubAccels() const { return static_cast<int>(subAccels.size()); }

    /** Aggregate peak compute of all sub-accelerators in GFLOP/s. */
    double peakGflops() const
    {
        double total = 0.0;
        for (const auto& s : subAccels)
            total += s.peakGflops();
        return total;
    }
};

/** The six test-bed settings of Table III. */
enum class Setting { S1, S2, S3, S4, S5, S6 };

/** Setting name ("S1".."S6"). */
std::string settingName(Setting s);

/** Parse a settingName(); throws std::invalid_argument. */
Setting settingFromName(const std::string& name);

/**
 * Build a Table III platform.
 *
 *  S1 Small Homog        4x (h=32,  HB, 146KB)
 *  S2 Small Hetero       3x (h=32,  HB, 146KB) + 1x (h=32,  LB, 110KB)
 *  S3 Large Homog        8x (h=128, HB, 580KB)
 *  S4 Large Hetero       7x (h=128, HB, 580KB) + 1x (h=128, LB, 434KB)
 *  S5 Large BigLittle    3x (128,HB,580K) 1x (128,LB,434K)
 *                        3x ( 64,HB,291K) 1x ( 64,LB,218K)
 *  S6 Large Scale-up     7x (128,HB,580K) 1x (128,LB,434K)
 *                        7x ( 64,HB,291K) 1x ( 64,LB,218K)
 *
 * All arrays are h x 64 PEs at 200 MHz with 1-Byte operands.
 */
Platform makeSetting(Setting s, double system_bw_gbps);

/**
 * Flexible-accelerator variant of a setting (Section VI-F): same PE
 * counts and dataflow styles, but each sub-accelerator may reshape its
 * 2-D array per job; SL fixed at 1KB/PE and SG at 2MB as in the paper.
 */
Platform makeFlexibleSetting(Setting s, double system_bw_gbps);

/** One sub-accelerator config helper used by the factories and tests. */
cost::SubAccelConfig makeSubAccel(cost::DataflowStyle style, int rows,
                                  double sg_kib);

}  // namespace magma::accel

#endif  // MAGMA_ACCEL_PLATFORM_H_
