#ifndef MAGMA_COMMON_RNG_H_
#define MAGMA_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace magma::common {

/**
 * Deterministic seeded random number generator used by every stochastic
 * component (optimizers, workload generation, RL agents).
 *
 * All randomness in the repository flows through an Rng instance so that
 * experiments are reproducible given a seed. The generator is a
 * std::mt19937_64 wrapped with the handful of draw shapes the search
 * algorithms need.
 */
class Rng {
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double uniform() { return unit_(engine_); }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /** Uniform integer in [0, n). n must be positive. */
    int uniformInt(int n)
    {
        return static_cast<int>(
            std::uniform_int_distribution<int64_t>(0, n - 1)(engine_));
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi)
    {
        return static_cast<int>(
            std::uniform_int_distribution<int64_t>(lo, hi)(engine_));
    }

    /** Standard normal draw. */
    double gauss() { return normal_(engine_); }

    /** Normal draw with given mean and standard deviation. */
    double gauss(double mean, double stddev)
    {
        return mean + stddev * gauss();
    }

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Random permutation of [0, n). */
    std::vector<int> permutation(int n);

    /**
     * Sample k distinct indices from [0, n) without replacement.
     * k must be <= n.
     */
    std::vector<int> sampleWithoutReplacement(int n, int k);

    /**
     * Draw an index from an unnormalized non-negative weight vector.
     * Falls back to uniform choice when all weights are zero.
     */
    int weightedChoice(const std::vector<double>& weights);

    /** Access to the raw engine for std distributions. */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
    std::uniform_real_distribution<double> unit_{0.0, 1.0};
    std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace magma::common

#endif  // MAGMA_COMMON_RNG_H_
