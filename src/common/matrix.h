#ifndef MAGMA_COMMON_MATRIX_H_
#define MAGMA_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

namespace magma::common {

/**
 * Small dense row-major matrix of doubles.
 *
 * This is deliberately a minimal numeric substrate: it backs the CMA-ES
 * covariance adaptation, the PCA projection used by the Fig. 10 harness,
 * and the RL network parameter blocks. It is not meant to compete with a
 * BLAS; all matrices in this project are at most a few hundred rows.
 */
class Matrix {
  public:
    Matrix() = default;
    Matrix(size_t rows, size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    /** Identity matrix of size n. */
    static Matrix identity(size_t n);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    /** Matrix product this * other. Dimensions must agree. */
    Matrix multiply(const Matrix& other) const;

    /** Matrix-vector product. v.size() must equal cols(). */
    std::vector<double> multiply(const std::vector<double>& v) const;

    /** Transpose. */
    Matrix transposed() const;

    /** Element-wise in-place scale. */
    void scale(double s);

    /** this += s * other (same shape). */
    void addScaled(const Matrix& other, double s);

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
 *
 * On return `eigenvalues[i]` pairs with column i of `eigenvectors`, sorted
 * in descending eigenvalue order. The input must be symmetric; asymmetry
 * below 1e-9 is tolerated and symmetrized away.
 */
struct EigenSym {
    std::vector<double> eigenvalues;
    Matrix eigenvectors;  // columns are unit eigenvectors
};

/**
 * Run Jacobi sweeps until off-diagonal mass is below tolerance or the sweep
 * limit is reached. Suitable for the <=300x300 matrices this project uses.
 */
EigenSym jacobiEigenSym(const Matrix& a, int max_sweeps = 64,
                        double tol = 1e-12);

}  // namespace magma::common

#endif  // MAGMA_COMMON_MATRIX_H_
