#ifndef MAGMA_COMMON_CSV_H_
#define MAGMA_COMMON_CSV_H_

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace magma::common {

/**
 * Minimal CSV writer used by the benchmark harnesses to dump figure data.
 *
 * Each harness prints human-readable rows to stdout and mirrors the series
 * into a CSV so the paper's plots can be regenerated with any plotting tool.
 */
class CsvWriter {
  public:
    /** Open (truncate) the file at `path` and write the header row. */
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    /** Append one row; the cell count should match the header. */
    void row(const std::vector<std::string>& cells);

    /** Convenience: numeric row. */
    void rowNumeric(const std::vector<double>& cells);

    /** Whether the file opened successfully. */
    bool ok() const { return static_cast<bool>(out_); }

    /** Format a double compactly (up to 6 significant digits). */
    static std::string num(double v);

  private:
    std::ofstream out_;
};

}  // namespace magma::common

#endif  // MAGMA_COMMON_CSV_H_
