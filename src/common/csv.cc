#include "common/csv.h"

#include <iomanip>

namespace magma::common {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path)
{
    if (out_)
        row(header);
}

void
CsvWriter::row(const std::vector<std::string>& cells)
{
    if (!out_)
        return;
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << cells[i];
    }
    out_ << '\n';
}

void
CsvWriter::rowNumeric(const std::vector<double>& cells)
{
    std::vector<std::string> s;
    s.reserve(cells.size());
    for (double c : cells)
        s.push_back(num(c));
    row(s);
}

std::string
CsvWriter::num(double v)
{
    std::ostringstream os;
    os << std::setprecision(6) << v;
    return os.str();
}

}  // namespace magma::common
