#ifndef MAGMA_COMMON_PCA_H_
#define MAGMA_COMMON_PCA_H_

#include <vector>

#include "common/matrix.h"

namespace magma::common {

/**
 * Principal component analysis over row-vector samples.
 *
 * Used by the Fig. 10 harness to project the sampled mapping genomes of each
 * optimizer into 2-D, mirroring the paper's PCA visualization of the
 * explored map-space.
 */
class Pca {
  public:
    /**
     * Fit on `samples` (each inner vector is one observation; all must share
     * a dimension) keeping `components` principal directions.
     */
    void fit(const std::vector<std::vector<double>>& samples, int components);

    /** Project one observation into the principal subspace. */
    std::vector<double> transform(const std::vector<double>& x) const;

    /** Project a batch. */
    std::vector<std::vector<double>>
    transform(const std::vector<std::vector<double>>& xs) const;

    /** Fraction of variance captured by each kept component. */
    const std::vector<double>& explainedVarianceRatio() const
    {
        return explained_;
    }

    int components() const { return components_; }

  private:
    int components_ = 0;
    std::vector<double> mean_;
    Matrix basis_;  // dim x components, columns are principal directions
    std::vector<double> explained_;
};

}  // namespace magma::common

#endif  // MAGMA_COMMON_PCA_H_
