#include "common/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace magma::common {

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n, 0.0);
    for (size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

Matrix
Matrix::multiply(const Matrix& other) const
{
    assert(cols_ == other.rows_);
    Matrix out(rows_, other.cols_, 0.0);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            double a = at(i, k);
            if (a == 0.0)
                continue;
            for (size_t j = 0; j < other.cols_; ++j)
                out.at(i, j) += a * other.at(k, j);
        }
    }
    return out;
}

std::vector<double>
Matrix::multiply(const std::vector<double>& v) const
{
    assert(v.size() == cols_);
    std::vector<double> out(rows_, 0.0);
    for (size_t i = 0; i < rows_; ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < cols_; ++j)
            acc += at(i, j) * v[j];
        out[i] = acc;
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out.at(j, i) = at(i, j);
    return out;
}

void
Matrix::scale(double s)
{
    for (double& x : data_)
        x *= s;
}

void
Matrix::addScaled(const Matrix& other, double s)
{
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += s * other.data_[i];
}

namespace {

/** One Jacobi rotation zeroing a(p,q); updates eigenvector accumulator. */
void
rotate(Matrix& a, Matrix& v, size_t p, size_t q)
{
    double apq = a.at(p, q);
    if (apq == 0.0)
        return;
    double app = a.at(p, p);
    double aqq = a.at(q, q);
    double theta = (aqq - app) / (2.0 * apq);
    double t = (theta >= 0 ? 1.0 : -1.0) /
               (std::abs(theta) + std::sqrt(theta * theta + 1.0));
    double c = 1.0 / std::sqrt(t * t + 1.0);
    double s = t * c;

    size_t n = a.rows();
    for (size_t k = 0; k < n; ++k) {
        double akp = a.at(k, p);
        double akq = a.at(k, q);
        a.at(k, p) = c * akp - s * akq;
        a.at(k, q) = s * akp + c * akq;
    }
    for (size_t k = 0; k < n; ++k) {
        double apk = a.at(p, k);
        double aqk = a.at(q, k);
        a.at(p, k) = c * apk - s * aqk;
        a.at(q, k) = s * apk + c * aqk;
    }
    for (size_t k = 0; k < n; ++k) {
        double vkp = v.at(k, p);
        double vkq = v.at(k, q);
        v.at(k, p) = c * vkp - s * vkq;
        v.at(k, q) = s * vkp + c * vkq;
    }
}

double
offDiagNorm(const Matrix& a)
{
    double sum = 0.0;
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            if (i != j)
                sum += a.at(i, j) * a.at(i, j);
    return std::sqrt(sum);
}

}  // namespace

EigenSym
jacobiEigenSym(const Matrix& input, int max_sweeps, double tol)
{
    assert(input.rows() == input.cols());
    size_t n = input.rows();

    // Symmetrize to absorb tiny numeric asymmetry from covariance updates.
    Matrix a(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            a.at(i, j) = 0.5 * (input.at(i, j) + input.at(j, i));

    Matrix v = Matrix::identity(n);
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (offDiagNorm(a) < tol)
            break;
        for (size_t p = 0; p + 1 < n; ++p)
            for (size_t q = p + 1; q < n; ++q)
                rotate(a, v, p, q);
    }

    EigenSym out;
    out.eigenvalues.resize(n);
    for (size_t i = 0; i < n; ++i)
        out.eigenvalues[i] = a.at(i, i);

    // Sort descending by eigenvalue, permuting eigenvector columns.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return out.eigenvalues[x] > out.eigenvalues[y];
    });

    EigenSym sorted;
    sorted.eigenvalues.resize(n);
    sorted.eigenvectors = Matrix(n, n);
    for (size_t j = 0; j < n; ++j) {
        sorted.eigenvalues[j] = out.eigenvalues[order[j]];
        for (size_t i = 0; i < n; ++i)
            sorted.eigenvectors.at(i, j) = v.at(i, order[j]);
    }
    return sorted;
}

}  // namespace magma::common
