#ifndef MAGMA_COMMON_TEXTNUM_H_
#define MAGMA_COMMON_TEXTNUM_H_

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace magma::common {

/**
 * The repo-wide bitwise text discipline for doubles, shared by every
 * persistent artifact (Mapping, specs/reports in api/textio.h, the
 * serve-layer MappingStore, mo::ParetoArchive): print with "%.17g" —
 * the shortest form strtod parses back to the identical bit pattern —
 * and validate on parse. One definition so a precision or locale fix
 * lands everywhere at once.
 */
inline std::string
formatDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Parse a formatDouble() token; `what` names the field in errors. */
inline double
parseDouble(const std::string& what, const std::string& value)
{
    char* end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        throw std::invalid_argument(what + ": bad number '" + value + "'");
    return v;
}

}  // namespace magma::common

#endif  // MAGMA_COMMON_TEXTNUM_H_
