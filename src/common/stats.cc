#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace magma::common {

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
minOf(const std::vector<double>& xs)
{
    if (xs.empty())
        return std::numeric_limits<double>::infinity();
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double>& xs)
{
    if (xs.empty())
        return -std::numeric_limits<double>::infinity();
    return *std::max_element(xs.begin(), xs.end());
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

void
RunningStat::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

}  // namespace magma::common
