#ifndef MAGMA_COMMON_STATS_H_
#define MAGMA_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace magma::common {

/** Arithmetic mean of a sample. Returns 0 for an empty sample. */
double mean(const std::vector<double>& xs);

/** Geometric mean of a strictly positive sample. Returns 0 if empty. */
double geomean(const std::vector<double>& xs);

/** Unbiased sample standard deviation. Returns 0 when n < 2. */
double stddev(const std::vector<double>& xs);

/** Minimum; returns +inf for an empty sample. */
double minOf(const std::vector<double>& xs);

/** Maximum; returns -inf for an empty sample. */
double maxOf(const std::vector<double>& xs);

/** Median (by copy-and-sort). Returns 0 for an empty sample. */
double median(std::vector<double> xs);

/**
 * Online mean/variance accumulator (Welford).
 *
 * Used by the benchmark harnesses to aggregate repeated search trials
 * without storing every observation.
 */
class RunningStat {
  public:
    void push(double x);
    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const { return n_ > 1 ? m2_ / (n_ - 1) : 0.0; }
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace magma::common

#endif  // MAGMA_COMMON_STATS_H_
