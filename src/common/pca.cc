#include "common/pca.h"

#include <cassert>
#include <cmath>

namespace magma::common {

void
Pca::fit(const std::vector<std::vector<double>>& samples, int components)
{
    assert(!samples.empty());
    size_t dim = samples[0].size();
    components_ = components;

    mean_.assign(dim, 0.0);
    for (const auto& s : samples) {
        assert(s.size() == dim);
        for (size_t j = 0; j < dim; ++j)
            mean_[j] += s[j];
    }
    for (double& m : mean_)
        m /= static_cast<double>(samples.size());

    Matrix cov(dim, dim, 0.0);
    for (const auto& s : samples) {
        for (size_t i = 0; i < dim; ++i) {
            double di = s[i] - mean_[i];
            if (di == 0.0)
                continue;
            for (size_t j = i; j < dim; ++j)
                cov.at(i, j) += di * (s[j] - mean_[j]);
        }
    }
    double denom = std::max<size_t>(samples.size() - 1, 1);
    for (size_t i = 0; i < dim; ++i)
        for (size_t j = i; j < dim; ++j) {
            cov.at(i, j) /= denom;
            cov.at(j, i) = cov.at(i, j);
        }

    EigenSym eig = jacobiEigenSym(cov);

    basis_ = Matrix(dim, components);
    double total = 0.0;
    for (double ev : eig.eigenvalues)
        total += std::max(ev, 0.0);
    explained_.clear();
    for (int c = 0; c < components; ++c) {
        for (size_t i = 0; i < dim; ++i)
            basis_.at(i, c) = eig.eigenvectors.at(i, c);
        explained_.push_back(total > 0
                                 ? std::max(eig.eigenvalues[c], 0.0) / total
                                 : 0.0);
    }
}

std::vector<double>
Pca::transform(const std::vector<double>& x) const
{
    assert(x.size() == mean_.size());
    std::vector<double> out(components_, 0.0);
    for (int c = 0; c < components_; ++c) {
        double acc = 0.0;
        for (size_t i = 0; i < x.size(); ++i)
            acc += (x[i] - mean_[i]) * basis_.at(i, c);
        out[c] = acc;
    }
    return out;
}

std::vector<std::vector<double>>
Pca::transform(const std::vector<std::vector<double>>& xs) const
{
    std::vector<std::vector<double>> out;
    out.reserve(xs.size());
    for (const auto& x : xs)
        out.push_back(transform(x));
    return out;
}

}  // namespace magma::common
