#include "common/rng.h"

#include <algorithm>
#include <numeric>

namespace magma::common {

std::vector<int>
Rng::permutation(int n)
{
    std::vector<int> p(n);
    std::iota(p.begin(), p.end(), 0);
    std::shuffle(p.begin(), p.end(), engine_);
    return p;
}

std::vector<int>
Rng::sampleWithoutReplacement(int n, int k)
{
    std::vector<int> p = permutation(n);
    p.resize(k);
    return p;
}

int
Rng::weightedChoice(const std::vector<double>& weights)
{
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    if (total <= 0.0)
        return uniformInt(static_cast<int>(weights.size()));
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return static_cast<int>(i);
    }
    return static_cast<int>(weights.size()) - 1;
}

}  // namespace magma::common
